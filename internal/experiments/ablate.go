package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/netlogistics/lsl/internal/graph"
	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/workload"
)

// EpsilonRow summarizes one ε setting in the ablation sweep.
type EpsilonRow struct {
	Epsilon         float64
	RelayedFraction float64
	MeanRelays      float64 // average relays per relayed path
	MeanSpeedup     float64 // measured over a small workload
}

// EpsilonSweep quantifies the tree-shaping tradeoff the paper leaves
// unevaluated ("We have not evaluated the choice of ε"): small ε admits
// noise-driven relays, large ε suppresses genuine wins.
func EpsilonSweep(seed int64, epsilons []float64, measurements int) ([]EpsilonRow, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}
	}
	if measurements <= 0 {
		measurements = 1500
	}
	t := topo.PlanetLab(topo.DefaultPlanetLab(), seed)
	rows := make([]EpsilonRow, 0, len(epsilons))
	for _, eps := range epsilons {
		planner, err := schedule.NewPlanner(t, eps)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 1))
		if err := planner.Prime(rng, 20); err != nil {
			return nil, err
		}
		if err := planner.Replan(); err != nil {
			return nil, err
		}
		frac, err := planner.RelayedFraction()
		if err != nil {
			return nil, err
		}

		// Relays per relayed path.
		var relays, relayedPaths int
		var eligible [][2]int
		for s := 0; s < t.N(); s++ {
			tree, err := planner.Tree(s)
			if err != nil {
				return nil, err
			}
			for d := 0; d < t.N(); d++ {
				if s == d {
					continue
				}
				if r := tree.Relays(graph.NodeID(d)); len(r) > 0 {
					relays += len(r)
					relayedPaths++
					eligible = append(eligible, [2]int{s, d})
				}
			}
		}
		row := EpsilonRow{Epsilon: eps, RelayedFraction: frac}
		if relayedPaths > 0 {
			row.MeanRelays = float64(relays) / float64(relayedPaths)
		}

		if len(eligible) > 0 {
			genRng := rand.New(rand.NewSource(seed + 2))
			genRng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
			if len(eligible) > 60 {
				eligible = eligible[:60]
			}
			eng := netsim.New(seed + 3)
			runner := workload.NewRunner(t, planner, eng, rng)
			gen := workload.NewPoolGenerator(eligible, genRng)
			gen.MaxExp = 5
			if err := runner.Run(gen, measurements); err != nil {
				return nil, err
			}
			var sum float64
			var n int
			for _, xs := range runner.Agg.Speedups() {
				for _, x := range xs {
					sum += x
					n++
				}
			}
			if n > 0 {
				row.MeanSpeedup = sum / float64(n)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatEpsilonSweep renders the sweep.
func FormatEpsilonSweep(rows []EpsilonRow) string {
	var b strings.Builder
	b.WriteString("Ablation: edge-equivalence epsilon\n")
	fmt.Fprintf(&b, "%8s %10s %11s %12s\n", "epsilon", "relayed%", "relays/path", "mean speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %9.1f%% %11.2f %11.3fx\n",
			r.Epsilon, 100*r.RelayedFraction, r.MeanRelays, r.MeanSpeedup)
	}
	return b.String()
}

// BufferRow summarizes one depot-pipeline size.
type BufferRow struct {
	PipelineBytes int64
	Bandwidth     float64 // relayed chain bandwidth, bytes/sec
	MaxLeadBytes  int64   // sublink-1 lead (the Figure 5 knee position)
}

// BufferSweep reruns the Figure 5 chain at several depot pipeline
// sizes: the knee tracks the buffer, and throughput is insensitive once
// the buffer covers the bandwidth-delay product.
func BufferSweep(seed int64, sizes []int64) ([]BufferRow, error) {
	if len(sizes) == 0 {
		sizes = []int64{1 << 20, 4 << 20, 16 << 20, 32 << 20, 64 << 20}
	}
	t := topo.TwoPath()
	rows := make([]BufferRow, 0, len(sizes))
	si, mi, di := t.MustHost(topo.UCSB), t.MustHost(topo.Denver), t.MustHost(topo.UIUC)
	for _, pb := range sizes {
		eng := netsim.New(seed)
		rng := rand.New(rand.NewSource(seed + 1))
		chain, err := t.RelayChain([]int{si, mi, di}, 64<<20, rng, true)
		if err != nil {
			return nil, err
		}
		chain.Depots[0].PipelineBytes = pb
		res, err := pipesim.Run(eng, chain)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BufferRow{
			PipelineBytes: pb,
			Bandwidth:     res.Bandwidth,
			MaxLeadBytes:  res.Traces[0].MaxLead(res.Traces[1]),
		})
	}
	return rows, nil
}

// FormatBufferSweep renders the sweep.
func FormatBufferSweep(rows []BufferRow) string {
	var b strings.Builder
	b.WriteString("Ablation: depot pipeline buffer (64MB UCSB->UIUC via Denver)\n")
	fmt.Fprintf(&b, "%10s %14s %12s\n", "buffer", "BW Mbit/s", "max lead MB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9dM %14.2f %12.1f\n",
			r.PipelineBytes>>20, mbit(r.Bandwidth), float64(r.MaxLeadBytes)/(1<<20))
	}
	return b.String()
}

// LossRow summarizes the logistical effect at one loss rate.
type LossRow struct {
	Loss      float64
	DirectBW  float64
	RelayedBW float64
	Speedup   float64
}

// LossSweep measures how the logistical effect scales with path loss:
// relaying splits both the RTT and the loss exposure of each sublink,
// so the win grows as loss rises (until timeouts dominate both).
func LossSweep(seed int64, losses []float64) ([]LossRow, error) {
	if len(losses) == 0 {
		losses = []float64{0, 1e-5, 4e-5, 1.6e-4, 6.4e-4}
	}
	rows := make([]LossRow, 0, len(losses))
	const size = 32 << 20
	for _, p := range losses {
		hosts := []topo.Host{
			{Name: "a", Site: "a", SndBuf: 8 << 20, RcvBuf: 8 << 20},
			{Name: "m", Site: "m", SndBuf: 8 << 20, RcvBuf: 8 << 20,
				Depot: true, ForwardRate: 100e6, PipelineBytes: 32 << 20},
			{Name: "b", Site: "b", SndBuf: 8 << 20, RcvBuf: 8 << 20},
		}
		t, err := topo.New("losssweep", hosts)
		if err != nil {
			return nil, err
		}
		t.SetLink(0, 1, topo.Link{RTT: 0.040, Capacity: 16e6, Loss: p / 2})
		t.SetLink(1, 2, topo.Link{RTT: 0.040, Capacity: 16e6, Loss: p / 2})
		t.SetLink(0, 2, topo.Link{RTT: 0.080, Capacity: 16e6, Loss: p})

		eng := netsim.New(seed)
		rng := rand.New(rand.NewSource(seed + 1))
		var direct, relayed float64
		const iters = 5
		for k := 0; k < iters; k++ {
			res, err := pipesim.Run(eng, t.DirectChain(0, 2, size, rng, false))
			if err != nil {
				return nil, err
			}
			direct += res.Bandwidth
			chain, err := t.RelayChain([]int{0, 1, 2}, size, rng, false)
			if err != nil {
				return nil, err
			}
			res, err = pipesim.Run(eng, chain)
			if err != nil {
				return nil, err
			}
			relayed += res.Bandwidth
		}
		direct /= iters
		relayed /= iters
		rows = append(rows, LossRow{Loss: p, DirectBW: direct, RelayedBW: relayed, Speedup: relayed / direct})
	}
	return rows, nil
}

// FormatLossSweep renders the sweep.
func FormatLossSweep(rows []LossRow) string {
	var b strings.Builder
	b.WriteString("Ablation: per-packet loss (32MB, 80ms path split at 40ms)\n")
	fmt.Fprintf(&b, "%10s %14s %14s %9s\n", "loss", "direct Mbit/s", "LSL Mbit/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.1e %14.2f %14.2f %8.2fx\n",
			r.Loss, mbit(r.DirectBW), mbit(r.RelayedBW), r.Speedup)
	}
	return b.String()
}

// FreshnessRow compares scheduling freshness policies.
type FreshnessRow struct {
	Policy      string
	MeanSpeedup float64
	Cases       int
}

// FreshnessSweep contrasts the paper's two operating modes: replanning
// every few minutes on fresh measurements (experiment 1) versus a
// single static plan (experiment 2). Host loads drift slowly over the
// run (an AR(1) walk advanced once per measurement), so a static plan
// ages while replanning tracks — "the frequency with which the
// algorithm can consider current network information ... are key
// issues with broader use of this approach."
func FreshnessSweep(seed int64, measurements int) ([]FreshnessRow, error) {
	if measurements <= 0 {
		measurements = 2000
	}
	policies := []struct {
		name        string
		replanEvery int
	}{
		{"static plan", 0},
		{"replan every 250", 250},
		{"replan every 50", 50},
	}
	rows := make([]FreshnessRow, 0, len(policies))
	for _, pol := range policies {
		cfg := AggregateConfig{
			Seed:         seed,
			Measurements: measurements,
			Hosts:        142,
			Epsilon:      schedule.DefaultEpsilon,
			ReplanEvery:  pol.replanEvery,
			PrimeSamples: 20,
			LoadDrift:    0.04,
		}
		res, err := Aggregate(cfg)
		if err != nil {
			return nil, err
		}
		var sum float64
		var n int
		for _, row := range res.Rows {
			sum += row.Mean * float64(row.Cases)
			n += row.Cases
		}
		out := FreshnessRow{Policy: pol.name, Cases: n}
		if n > 0 {
			out.MeanSpeedup = sum / float64(n)
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// FormatFreshnessSweep renders the sweep.
func FormatFreshnessSweep(rows []FreshnessRow) string {
	var b strings.Builder
	b.WriteString("Ablation: scheduling freshness\n")
	fmt.Fprintf(&b, "%-20s %12s %8s\n", "policy", "mean speedup", "cases")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %11.3fx %8d\n", r.Policy, r.MeanSpeedup, r.Cases)
	}
	return b.String()
}

// BaselineRow compares path metrics.
type BaselineRow struct {
	Metric      string
	MeanSpeedup float64
	MeanHops    float64
	Cases       int
}

// BaselineComparison pits the paper's minimax metric against the
// classic additive shortest-path metric (and against always-direct) on
// identical workloads, validating the claim that a pipelined chain's
// performance is governed by its worst link, not the sum.
func BaselineComparison(seed int64, measurements int) ([]BaselineRow, error) {
	if measurements <= 0 {
		measurements = 4000
	}
	t := topo.PlanetLab(topo.DefaultPlanetLab(), seed)
	planner, err := schedule.NewPlanner(t, schedule.DefaultEpsilon)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	if err := planner.Prime(rng, 20); err != nil {
		return nil, err
	}
	if err := planner.Replan(); err != nil {
		return nil, err
	}
	g := planner.Graph()

	// Shared pool: pairs where minimax relays.
	var eligible [][2]int
	for s := 0; s < t.N(); s++ {
		for d := 0; d < t.N(); d++ {
			if s == d {
				continue
			}
			if rel, err := planner.Relayed(s, d); err == nil && rel {
				eligible = append(eligible, [2]int{s, d})
			}
		}
	}
	genRng := rand.New(rand.NewSource(seed + 2))
	genRng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if len(eligible) > 80 {
		eligible = eligible[:80]
	}

	type metric struct {
		name   string
		pathTo func(s, d int) []int
	}
	spTrees := make(map[int]*graph.Tree)
	spPath := func(s, d int) []int {
		tree, ok := spTrees[s]
		if !ok {
			tree = graph.ShortestPathTree(g, graph.NodeID(s))
			spTrees[s] = tree
		}
		nodes := tree.PathTo(graph.NodeID(d))
		// Shortest-path trees may route through non-depots; clamp those
		// paths to direct, as a deployed system would have to.
		out := make([]int, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, int(n))
		}
		for _, h := range out[1:maxInt(len(out)-1, 1)] {
			if !t.Hosts[h].Depot {
				return []int{s, d}
			}
		}
		return out
	}
	mmPath := func(s, d int) []int {
		p, err := planner.Path(s, d)
		if err != nil || p == nil {
			return []int{s, d}
		}
		return p
	}
	directPath := func(s, d int) []int { return []int{s, d} }

	metrics := []metric{
		{"minimax (paper)", mmPath},
		{"shortest-path sum", spPath},
		{"always direct", directPath},
	}

	// Pre-generate one test schedule shared by every policy (common
	// random numbers), so the comparison reflects the path metric and
	// not sampling noise.
	type testCase struct {
		pair      [2]int
		size      int64
		scheduled bool
	}
	gen := rand.New(rand.NewSource(seed + 4))
	tests := make([]testCase, measurements)
	for i := range tests {
		tests[i] = testCase{
			pair:      eligible[gen.Intn(len(eligible))],
			size:      int64(1) << (20 + gen.Intn(7)),
			scheduled: gen.Intn(2) == 0,
		}
	}

	rows := make([]BaselineRow, 0, len(metrics))
	for _, m := range metrics {
		eng := netsim.New(seed + 3)
		loadRng := rand.New(rand.NewSource(seed + 5))
		agg := stats.NewSpeedupAggregator()
		var hops, paths int
		for _, tc := range tests {
			pair, size := tc.pair, tc.size
			key := stats.CaseKey{
				Source: t.Hosts[pair[0]].Name,
				Dest:   t.Hosts[pair[1]].Name,
				Size:   size,
			}
			if !tc.scheduled {
				res, err := pipesim.Run(eng, t.DirectChain(pair[0], pair[1], size, loadRng, false))
				if err != nil {
					return nil, err
				}
				agg.AddDirect(key, res.Bandwidth)
			} else {
				path := m.pathTo(pair[0], pair[1])
				hops += len(path) - 2
				paths++
				var chain pipesim.Chain
				var err error
				if len(path) > 2 {
					chain, err = t.RelayChain(path, size, loadRng, false)
					if err != nil {
						return nil, err
					}
				} else {
					chain = t.DirectChain(pair[0], pair[1], size, loadRng, false)
				}
				res, err := pipesim.Run(eng, chain)
				if err != nil {
					return nil, err
				}
				agg.AddScheduled(key, res.Bandwidth)
			}
		}
		var sum float64
		var n int
		for _, xs := range agg.Speedups() {
			for _, x := range xs {
				sum += x
				n++
			}
		}
		row := BaselineRow{Metric: m.name, Cases: n}
		if n > 0 {
			row.MeanSpeedup = sum / float64(n)
		}
		if paths > 0 {
			row.MeanHops = float64(hops) / float64(paths)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatBaselineComparison renders the comparison.
func FormatBaselineComparison(rows []BaselineRow) string {
	var b strings.Builder
	b.WriteString("Ablation: path metric (same relayed-pair pool)\n")
	fmt.Fprintf(&b, "%-20s %12s %12s %8s\n", "metric", "mean speedup", "relays/path", "cases")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %11.3fx %12.2f %8d\n", r.Metric, r.MeanSpeedup, r.MeanHops, r.Cases)
	}
	return b.String()
}
