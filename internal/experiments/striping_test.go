package experiments

import "testing"

// TestStripingSpeedup is the striping acceptance check: on a
// window-limited emulated path, a multi-stripe transfer must deliver at
// least 1.5x the single-stripe throughput.
func TestStripingSpeedup(t *testing.T) {
	cfg := DefaultStriping()
	cfg.Size = 2 << 20
	cfg.Stripes = []int{1, 4}
	cfg.Reps = 2
	rows, err := Striping(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Mbit <= 0 || rows[1].Mbit <= 0 {
		t.Fatalf("non-positive throughput: %+v", rows)
	}
	if rows[1].Speedup < 1.5 {
		t.Fatalf("4-stripe speedup = %.2fx, want >= 1.5x (rows %+v)", rows[1].Speedup, rows)
	}
	// The forecast must agree on the direction: more stripes, more
	// predicted bandwidth, still bounded by the physical path.
	if rows[1].Predicted < rows[0].Predicted {
		t.Fatalf("forecast shrank with stripes: %+v", rows)
	}

	n, bw, err := SuggestedStripes(16)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 16 || bw <= 0 {
		t.Fatalf("SuggestedStripes = %d, %.2f", n, bw)
	}
}
