package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
)

// MultipathConfig parameterizes the disjoint-route aggregation sweep.
type MultipathConfig struct {
	Seed      int64
	Size      int64   // bytes per transfer
	Paths     []int   // route counts to measure, in order
	Reps      int     // transfers averaged per route count
	TimeScale float64 // emulation time compression
}

// DefaultMultipath measures 8 MB transfers over one and then both of
// the testbed's edge-disjoint depot routes, three runs each.
func DefaultMultipath() MultipathConfig {
	return MultipathConfig{
		Seed:  1,
		Size:  8 << 20,
		Paths: []int{1, 2},
		Reps:  3,
		// Capacity-limited regime: per-range transmission time on a
		// 20 Mbit/s segment must dominate the fixed per-range setup
		// and ack costs, or the aggregation signal drowns in them.
		TimeScale: 0.1,
	}
}

// MultipathRow is the measured and forecast throughput at one route
// count.
type MultipathRow struct {
	Paths     int
	Mbit      float64 // mean delivered throughput, Mbit per emulated second
	Speedup   float64 // vs the single-route row (1.0 when none ran)
	Predicted float64 // planner's aggregate-capacity forecast, Mbit/s
	Stolen    int     // work-stolen ranges summed over the reps
	Verified  bool    // every rep's end-to-end digest checked out
}

// multipathTopology is the sweep's testbed: two fully edge-disjoint
// depot routes between src and dst, each capacity-limited at 20
// Mbit/s per segment, with only a 1 Mbit/s trickle directly. One
// route alone is pinned at its bottleneck segment; fanning the
// transfer across both should roughly double delivered throughput.
// Depot forwarding is deliberately not the bottleneck (ForwardRate
// must stay positive — the planner prices transit as 1/ForwardRate).
func multipathTopology() (*topo.Topology, error) {
	const (
		mbit = 1e6 / 8
		buf  = int64(8 << 20)
	)
	hosts := []topo.Host{
		{Name: "src", Site: "src", SndBuf: buf, RcvBuf: buf},
		{Name: "depot-a", Site: "a", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 1e9, PipelineBytes: 1 << 20},
		{Name: "depot-b", Site: "b", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 1e9, PipelineBytes: 1 << 20},
		{Name: "dst", Site: "dst", SndBuf: buf, RcvBuf: buf},
	}
	tp, err := topo.New("multipath", hosts)
	if err != nil {
		return nil, err
	}
	ms := simtime.Milliseconds
	set := func(a, b string, capMbit float64) {
		tp.SetLink(tp.MustHost(a), tp.MustHost(b), topo.Link{RTT: ms(10), Capacity: capMbit * mbit})
	}
	set("src", "depot-a", 20)
	set("depot-a", "dst", 20)
	set("src", "depot-b", 20)
	set("depot-b", "dst", 20)
	set("src", "dst", 1)
	return tp, nil
}

// Multipath measures delivered throughput of one object moved over a
// varying number of edge-disjoint depot routes, each row set against
// the planner's aggregate-capacity forecast for the same route set.
// Every transfer runs with end-to-end integrity on, so the sweep also
// demonstrates the digest surviving out-of-order multi-route
// reassembly. The expected shape: aggregate throughput well above the
// best single minimax route — the work-stealing dispatcher keeps both
// routes busy until the object's tail.
func Multipath(cfg MultipathConfig) ([]MultipathRow, error) {
	if cfg.Size <= 0 {
		cfg.Size = DefaultMultipath().Size
	}
	if len(cfg.Paths) == 0 {
		cfg.Paths = DefaultMultipath().Paths
	}
	if cfg.Reps <= 0 {
		cfg.Reps = DefaultMultipath().Reps
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = DefaultMultipath().TimeScale
	}
	tp, err := multipathTopology()
	if err != nil {
		return nil, fmt.Errorf("experiments: multipath: %w", err)
	}
	reg := obs.NewRegistry()
	sys, err := core.NewSystem(tp, core.Config{
		TimeScale: cfg.TimeScale,
		Seed:      cfg.Seed,
		Metrics:   reg,
		Integrity: true,
		Epsilon:   -1, // paper-default edge equivalence
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: multipath: %w", err)
	}
	defer sys.Close()

	src, dst := tp.MustHost("src"), tp.MustHost("dst")
	rows := make([]MultipathRow, 0, len(cfg.Paths))
	var base float64 // single-route mean, for the speedup column
	for _, k := range cfg.Paths {
		routes, err := sys.Planner.DisjointPaths(src, dst, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: multipath: %w", err)
		}
		var mbits []float64
		stolen := 0
		mismatchBefore := reg.Counter(core.MetricDigestMismatches).Value()
		verifiedBefore := reg.Counter(core.MetricMultipathDigestVerified).Value()
		for rep := 0; rep < cfg.Reps; rep++ {
			res, err := sys.TransferMultipath("src", "dst", cfg.Size, k, core.DefaultRecovery())
			if err != nil {
				return nil, fmt.Errorf("experiments: multipath %d routes: %w", k, err)
			}
			mbits = append(mbits, res.Bandwidth*8/1e6)
			stolen += res.Stolen
		}
		// A single route verifies through the ordinary in-order digest
		// path (no mismatches); true multi-route reps must additionally
		// count one stitched verification each.
		verified := reg.Counter(core.MetricDigestMismatches).Value() == mismatchBefore
		if k > 1 && len(routes) > 1 {
			verified = verified &&
				reg.Counter(core.MetricMultipathDigestVerified).Value() == verifiedBefore+int64(cfg.Reps)
		}
		row := MultipathRow{
			Paths:     len(routes),
			Mbit:      stats.Mean(mbits),
			Predicted: sys.Planner.AggregateBandwidth(routes) * 8 / 1e6,
			Stolen:    stolen,
			Verified:  verified,
		}
		if k == 1 {
			base = row.Mbit
		}
		row.Speedup = 1
		if base > 0 {
			row.Speedup = row.Mbit / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatMultipath renders the sweep plus the planner's route-count
// suggestion for the same host pair.
func FormatMultipath(rows []MultipathRow) string {
	var b strings.Builder
	b.WriteString("Multipath: one transfer fanned across edge-disjoint depot routes (8 MB object)\n")
	fmt.Fprintf(&b, "%6s %12s %9s %15s %7s %9s\n", "paths", "Mbit/s", "speedup", "forecast Mbit/s", "stolen", "digest")
	for _, r := range rows {
		digest := "FAIL"
		if r.Verified {
			digest = "ok"
		}
		fmt.Fprintf(&b, "%6d %12.2f %8.2fx %15.2f %7d %9s\n", r.Paths, r.Mbit, r.Speedup, r.Predicted, r.Stolen, digest)
	}
	return b.String()
}

// SuggestedPaths reruns the sweep's planning step alone and reports the
// planner's pick: every disjoint route still adding meaningful
// aggregate capacity, with the forecast for the set.
func SuggestedPaths(max int) (int, float64, error) {
	tp, err := multipathTopology()
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: multipath: %w", err)
	}
	sys, err := core.NewSystem(tp, core.Config{TimeScale: 0.1, Seed: 1, Metrics: obs.NewRegistry(), Epsilon: -1})
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: multipath: %w", err)
	}
	defer sys.Close()
	routes, bw, err := sys.Planner.SuggestPaths(tp.MustHost("src"), tp.MustHost("dst"), max)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: multipath: %w", err)
	}
	return len(routes), bw * 8 / 1e6, nil
}
