package experiments

import (
	"strings"
	"testing"
)

// TestIntegritySweepRecovers is the acceptance gate for the integrity
// subsystem: corruption injected at each relay in turn must be detected
// at that hop (checksum errors counted, a retry burned) and the
// transfer must still deliver the full object, while the clean baseline
// counts no errors at all.
func TestIntegritySweepRecovers(t *testing.T) {
	cfg := DefaultIntegrity()
	cfg.Size = 64 << 10
	cfg.CorruptAt = 16 << 10
	rows, err := Integrity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Recovered || r.Bytes != cfg.Size {
			t.Fatalf("%s: recovered=%v bytes=%d, want full delivery", r.Hop, r.Recovered, r.Bytes)
		}
		if r.Hop == "none" {
			if r.Injected != 0 || r.ChecksumErrors != 0 || r.DigestMismatch != 0 {
				t.Fatalf("baseline counted errors: %+v", r)
			}
			continue
		}
		if r.Injected != 1 {
			t.Fatalf("%s: injected = %d, want 1", r.Hop, r.Injected)
		}
		if r.ChecksumErrors < 1 {
			t.Fatalf("%s: checksum errors = %d, want >= 1", r.Hop, r.ChecksumErrors)
		}
		if r.Retries < 1 {
			t.Fatalf("%s: retries = %d, want >= 1", r.Hop, r.Retries)
		}
	}
	out := FormatIntegrity(rows)
	if !strings.Contains(out, "PASS") {
		t.Fatalf("verdict not PASS:\n%s", out)
	}
}
