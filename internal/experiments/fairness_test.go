package experiments

import (
	"strings"
	"testing"

	"github.com/netlogistics/lsl/internal/workload"
)

// TestFairnessProportionalSplit: the fairness experiment must measure
// per-unit throughput near-equal across weight classes — the
// acceptance shape behind EXPERIMENTS.md's table.
func TestFairnessProportionalSplit(t *testing.T) {
	cfg := DefaultFairness()
	cfg.Sessions = 6
	cfg.Weights = []uint16{2, 1}
	cfg.Size = 512 << 10
	r, err := Fairness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NormalizedJain < 0.85 {
		t.Fatalf("weight-normalized Jain %.3f, want ≥0.85:\n%s",
			r.NormalizedJain, FormatFairness(r))
	}
	if r.PerWeight[2] <= r.PerWeight[1] {
		t.Fatalf("weight 2 mean %.0f not above weight 1 mean %.0f",
			r.PerWeight[2], r.PerWeight[1])
	}
	out := FormatFairness(r)
	if !strings.Contains(out, "Jain index") {
		t.Fatalf("rendering missing Jain line:\n%s", out)
	}
}

// TestLoadgenExperiment: the mesh load harness runs a paced burst load
// with bounded admission and renders its report.
func TestLoadgenExperiment(t *testing.T) {
	out, err := Loadgen(LoadgenConfig{
		Sessions:    24,
		MaxSessions: 4,
		QueueDepth:  8,
		Arrival:     workload.BurstArrivals{Size: 8, Gap: 5e6}, // 5ms
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sessions 24", "Jain index", "admission:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
