package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, out string, wantCols int) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short:\n%s", out)
	}
	var rows [][]string
	for i, l := range lines {
		fields := strings.Split(l, ",")
		if len(fields) != wantCols {
			t.Fatalf("line %d has %d columns, want %d: %q", i, len(fields), wantCols, l)
		}
		rows = append(rows, fields)
	}
	return rows
}

func TestBandwidthCurveCSV(t *testing.T) {
	c, err := Fig2(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, c.CSV(), 4)
	if rows[0][0] != "size_mb" {
		t.Fatalf("header = %v", rows[0])
	}
	if len(rows)-1 != len(c.Sizes) {
		t.Fatalf("data rows = %d, want %d", len(rows)-1, len(c.Sizes))
	}
	for _, r := range rows[1:] {
		for _, f := range r {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				t.Fatalf("non-numeric field %q", f)
			}
		}
	}
}

func TestSeqTracesCSV(t *testing.T) {
	r, err := Fig5(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, r.CSV(), 4)
	if rows[0][0] != "time_s" {
		t.Fatalf("header = %v", rows[0])
	}
	// Sequence columns are monotone non-decreasing.
	var prev [3]float64
	for _, row := range rows[1:] {
		for c := 1; c <= 3; c++ {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatalf("bad field %q", row[c])
			}
			if v < prev[c-1] {
				t.Fatalf("column %d not monotone: %v after %v", c, v, prev[c-1])
			}
			prev[c-1] = v
		}
	}
	// The final row reaches the full 64 MB on every series.
	last := rows[len(rows)-1]
	for c := 1; c <= 3; c++ {
		v, _ := strconv.ParseFloat(last[c], 64)
		if v < 63.5 {
			t.Fatalf("series %d ends at %v MB, want 64", c, v)
		}
	}
}

func TestAggregateCSV(t *testing.T) {
	cfg := DefaultAggregate()
	cfg.Measurements = 600
	cfg.ReplanEvery = 0
	res, err := Aggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, res.CSV(), 9)
	if rows[0][0] != "size_mb" {
		t.Fatalf("header = %v", rows[0])
	}
}

func TestCoreCSV(t *testing.T) {
	cfg := DefaultCore()
	cfg.Reps16 = 1
	cfg.Reps128 = 1
	res, err := Core(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, res.CSV(), 7)
	if len(rows) != 3 { // header + 16M + 128M
		t.Fatalf("rows = %d", len(rows))
	}
}
