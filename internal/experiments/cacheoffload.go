package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

// CacheOffloadConfig parameterises the content-addressed cache
// acceptance sweep. Zero fields take DefaultCacheOffload values.
type CacheOffloadConfig struct {
	Seed       int64
	Size       int64   // bytes per object
	TimeScale  float64 // emulation time compression
	Attempts   int     // retry budget per transfer
	CacheBytes int64   // per-depot cache capacity
}

// DefaultCacheOffload is the configuration the acceptance run uses.
func DefaultCacheOffload() CacheOffloadConfig {
	return CacheOffloadConfig{Seed: 1, Size: 4 << 20, TimeScale: 0.01, Attempts: 6, CacheBytes: 64 << 20}
}

// CacheOffloadRow is one phase's outcome over the shared system: the
// cold population run, the warm repeat, and the repeat after the relay
// caches were tampered with.
type CacheOffloadRow struct {
	Phase       string  // cold | warm | tamper
	Bytes       int64   // bytes the sink verified
	OriginBytes int64   // payload the origin actually sent
	CachedBytes int64   // payload a depot cache served
	Holder      string  // serving depot ("" = all-origin)
	Mbps        float64 // end-to-end delivered bandwidth
	CacheHits   int64   // depot_cache_hits_total delta for this phase
	Fallbacks   int64   // core_cache_fallbacks_total delta for this phase
	Digest      int64   // core_digest_mismatches_total delta (must stay 0)
	Delivered   bool    // the full object arrived and verified
}

// cacheOffloadTopology is a three-hop chain whose bandwidth RISES
// toward the destination: src→relay-a is the 10 Mbit/s bottleneck,
// relay-a→relay-b runs at 40, relay-b→dst at 100. A warm transfer
// served from relay-b touches only the fast last hop, so the cache is
// worth a large factor — exactly the "move the bytes close, then serve
// them locally" argument of network logistics. Direct shortcuts are
// trickles so the planner always picks the chain.
func cacheOffloadTopology() (*topo.Topology, error) {
	const (
		mbit = 1e6 / 8
		buf  = int64(8 << 20)
	)
	hosts := []topo.Host{
		{Name: "src", Site: "src", SndBuf: buf, RcvBuf: buf},
		{Name: "relay-a", Site: "a", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "relay-b", Site: "b", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "dst", Site: "dst", SndBuf: buf, RcvBuf: buf},
	}
	tp, err := topo.New("cacheoffload", hosts)
	if err != nil {
		return nil, err
	}
	ms := simtime.Milliseconds
	set := func(a, b string, capMbit float64) {
		tp.SetLink(tp.MustHost(a), tp.MustHost(b), topo.Link{RTT: ms(10), Capacity: capMbit * mbit})
	}
	set("src", "relay-a", 10)
	set("relay-a", "relay-b", 40)
	set("relay-b", "dst", 100)
	set("src", "dst", 2)
	set("src", "relay-b", 4)
	set("relay-a", "dst", 4)
	return tp, nil
}

// CacheOffload runs the cache acceptance sweep on ONE system, because
// the phases are causally chained: the cold transfer populates the
// relay caches, the warm repeat of the same object must be served
// almost entirely out of them (origin bytes zero, ≥2× the cold
// bandwidth on this rising-bandwidth chain), and after every cached
// copy is tampered with, the next repeat must detect the damage on
// read, fall back to the origin, and still deliver a digest-verified
// object.
func CacheOffload(cfg CacheOffloadConfig) ([]CacheOffloadRow, error) {
	def := DefaultCacheOffload()
	if cfg.Size <= 0 {
		cfg.Size = def.Size
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = def.TimeScale
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = def.Attempts
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = def.CacheBytes
	}

	tp, err := cacheOffloadTopology()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	sys, err := core.NewSystem(tp, core.Config{
		TimeScale:  cfg.TimeScale,
		Seed:       cfg.Seed,
		Metrics:    reg,
		Integrity:  true,
		CacheBytes: cfg.CacheBytes,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	id, err := wire.NewSessionID()
	if err != nil {
		return nil, err
	}
	pol := core.RecoveryPolicy{
		Retry: retry.Policy{
			MaxAttempts: cfg.Attempts,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Multiplier:  2,
		},
		AttemptTimeout: 10 * time.Second,
	}

	var rows []CacheOffloadRow
	run := func(phase string) error {
		hits0 := reg.Counter(cache.MetricHits).Value()
		falls0 := reg.Counter(core.MetricCacheFallbacks).Value()
		digest0 := reg.Counter(core.MetricDigestMismatches).Value()
		res, terr := sys.TransferCached("src", "dst", id, cfg.Size, pol)
		rows = append(rows, CacheOffloadRow{
			Phase:       phase,
			Bytes:       res.Bytes,
			OriginBytes: res.OriginBytes,
			CachedBytes: res.CachedBytes,
			Holder:      res.Holder,
			Mbps:        res.Bandwidth * 8 / 1e6,
			CacheHits:   reg.Counter(cache.MetricHits).Value() - hits0,
			Fallbacks:   reg.Counter(core.MetricCacheFallbacks).Value() - falls0,
			Digest:      reg.Counter(core.MetricDigestMismatches).Value() - digest0,
			Delivered:   terr == nil && res.Bytes == cfg.Size,
		})
		if terr != nil {
			return fmt.Errorf("experiments: cacheoffload %s: %w", phase, terr)
		}
		return nil
	}

	if err := run("cold"); err != nil {
		return rows, err
	}
	if err := run("warm"); err != nil {
		return rows, err
	}
	obj := depot.PatternDigest(id, cfg.Size)
	for _, host := range []string{"relay-a", "relay-b"} {
		if c := sys.DepotCache(host); c != nil {
			c.Tamper(obj, 0)
		}
	}
	if err := run("tamper"); err != nil {
		return rows, err
	}
	return rows, nil
}

// FormatCacheOffload renders the sweep table plus a pass/fail verdict.
func FormatCacheOffload(rows []CacheOffloadRow) string {
	var b strings.Builder
	b.WriteString("CacheOffload: repeat transfers served from depot caches, tamper falls back to origin\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %-10s %10s %6s %6s %6s %10s\n",
		"phase", "bytes", "origin_B", "cached_B", "holder", "Mbps", "hits", "fallbk", "digest", "delivered")
	byPhase := make(map[string]CacheOffloadRow, len(rows))
	for _, r := range rows {
		holder := r.Holder
		if holder == "" {
			holder = "-"
		}
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %-10s %10.2f %6d %6d %6d %10v\n",
			r.Phase, r.Bytes, r.OriginBytes, r.CachedBytes, holder, r.Mbps, r.CacheHits, r.Fallbacks, r.Digest, r.Delivered)
		byPhase[r.Phase] = r
	}
	cold, warm, tamper := byPhase["cold"], byPhase["warm"], byPhase["tamper"]
	ok := cold.Delivered && warm.Delivered && tamper.Delivered
	if cold.OriginBytes != cold.Bytes || cold.Holder != "" {
		ok = false // the cold run must come entirely from the origin
	}
	if warm.OriginBytes != 0 || warm.CachedBytes != warm.Bytes || warm.Holder == "" {
		ok = false // the warm run must be a full cache hit
	}
	if cold.Mbps > 0 && warm.Mbps < 2*cold.Mbps {
		ok = false
	}
	if tamper.OriginBytes == 0 || tamper.Fallbacks < 1 {
		ok = false // tampering must force an origin fallback
	}
	if cold.Digest+warm.Digest+tamper.Digest != 0 {
		ok = false // the sink's end-to-end digest must never mismatch
	}
	if cold.Mbps > 0 {
		fmt.Fprintf(&b, "warm speedup: %.2fx over cold\n", warm.Mbps/cold.Mbps)
	}
	if ok {
		b.WriteString("verdict: PASS — warm ≥2x cold with zero origin bytes, tamper recovered from origin\n")
	} else {
		b.WriteString("verdict: FAIL — see rows above\n")
	}
	return b.String()
}
