package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
)

// StripingConfig parameterizes the striped-sublink throughput sweep.
type StripingConfig struct {
	Seed      int64
	Size      int64   // bytes per transfer
	Stripes   []int   // stripe counts to measure, in order
	Reps      int     // transfers averaged per stripe count
	TimeScale float64 // emulation time compression
}

// DefaultStriping measures 4 MB transfers at 1/2/4/8 stripes, three
// runs each, over a window-limited relay path.
func DefaultStriping() StripingConfig {
	return StripingConfig{
		Seed:    1,
		Size:    4 << 20,
		Stripes: []int{1, 2, 4, 8},
		Reps:    3,
		// Mild time compression: the scaled link latency must stay well
		// above goroutine scheduling granularity or the window-limited
		// regime the sweep exists to show disappears into wall-clock
		// noise.
		TimeScale: 0.05,
	}
}

// StripingRow is the measured and forecast throughput at one stripe
// count.
type StripingRow struct {
	Stripes   int
	Mbit      float64 // mean delivered throughput, Mbit per emulated second
	Speedup   float64 // vs the 1-stripe row (1.0 when no 1-stripe row ran)
	Predicted float64 // scheduler's stripe-aware bottleneck forecast, Mbit/s
}

// stripingTopology is the sweep's testbed: a fast two-hop depot path
// whose end hosts advertise deliberately small socket buffers, so a
// single sublink is pinned at roughly window/RTT — the loss- and
// window-limited regime where the paper's wide-area transfers live —
// while the physical links have capacity to spare. Striping the
// session across parallel sublinks multiplies the effective window
// without touching the hosts' buffer sizing.
func stripingTopology() (*topo.Topology, error) {
	const (
		mbit   = 1e6 / 8
		window = int64(64 << 10)
	)
	hosts := []topo.Host{
		{Name: "src", Site: "src", SndBuf: window, RcvBuf: window},
		{Name: "relay", Site: "relay", SndBuf: window, RcvBuf: window,
			Depot: true, PipelineBytes: 1 << 20},
		{Name: "dst", Site: "dst", SndBuf: window, RcvBuf: window},
	}
	tp, err := topo.New("striping", hosts)
	if err != nil {
		return nil, err
	}
	ms := simtime.Milliseconds
	tp.SetLink(tp.MustHost("src"), tp.MustHost("relay"), topo.Link{RTT: ms(40), Capacity: 622 * mbit})
	tp.SetLink(tp.MustHost("relay"), tp.MustHost("dst"), topo.Link{RTT: ms(40), Capacity: 622 * mbit})
	tp.SetLink(tp.MustHost("src"), tp.MustHost("dst"), topo.Link{RTT: ms(80), Capacity: 2 * mbit})
	return tp, nil
}

// Striping measures delivered throughput of one object moved over the
// depot path with a varying number of parallel sublinks ("stripes"),
// and sets each measurement against the scheduler's stripe-aware
// bottleneck forecast for the same path. The expected shape: near-
// linear speedup while the per-sublink window is the bottleneck,
// flattening once the stripes saturate the path or the depot pump.
func Striping(cfg StripingConfig) ([]StripingRow, error) {
	if cfg.Size <= 0 {
		cfg.Size = DefaultStriping().Size
	}
	if len(cfg.Stripes) == 0 {
		cfg.Stripes = DefaultStriping().Stripes
	}
	if cfg.Reps <= 0 {
		cfg.Reps = DefaultStriping().Reps
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = DefaultStriping().TimeScale
	}
	tp, err := stripingTopology()
	if err != nil {
		return nil, fmt.Errorf("experiments: striping: %w", err)
	}
	sys, err := core.NewSystem(tp, core.Config{
		TimeScale: cfg.TimeScale,
		Seed:      cfg.Seed,
		Metrics:   obs.NewRegistry(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: striping: %w", err)
	}
	defer sys.Close()

	path, err := sys.Planner.Path(tp.MustHost("src"), tp.MustHost("dst"))
	if err != nil {
		return nil, fmt.Errorf("experiments: striping: %w", err)
	}

	rows := make([]StripingRow, 0, len(cfg.Stripes))
	var base float64 // 1-stripe mean, for the speedup column
	for _, n := range cfg.Stripes {
		var mbits []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			res, err := sys.TransferStriped("src", "dst", cfg.Size, n, core.DefaultRecovery())
			if err != nil {
				return nil, fmt.Errorf("experiments: striping %d stripes: %w", n, err)
			}
			mbits = append(mbits, res.Bandwidth*8/1e6)
		}
		row := StripingRow{
			Stripes:   n,
			Mbit:      stats.Mean(mbits),
			Predicted: sys.Planner.StripedBottleneck(path, n) * 8 / 1e6,
		}
		if n == 1 {
			base = row.Mbit
		}
		row.Speedup = 1
		if base > 0 {
			row.Speedup = row.Mbit / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatStriping renders the sweep plus the scheduler's stripe-count
// suggestion for the same path.
func FormatStriping(rows []StripingRow) string {
	var b strings.Builder
	b.WriteString("Striping: parallel sublinks over a window-limited depot path (4 MB object)\n")
	fmt.Fprintf(&b, "%8s %12s %9s %15s\n", "stripes", "Mbit/s", "speedup", "forecast Mbit/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12.2f %8.2fx %15.2f\n", r.Stripes, r.Mbit, r.Speedup, r.Predicted)
	}
	return b.String()
}

// SuggestedStripes reruns the sweep's planning step alone and reports
// the scheduler's pick: the smallest stripe count past which the
// stripe-aware bottleneck forecast stops improving.
func SuggestedStripes(max int) (int, float64, error) {
	tp, err := stripingTopology()
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: striping: %w", err)
	}
	sys, err := core.NewSystem(tp, core.Config{TimeScale: 0.05, Seed: 1, Metrics: obs.NewRegistry()})
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: striping: %w", err)
	}
	defer sys.Close()
	path, err := sys.Planner.Path(tp.MustHost("src"), tp.MustHost("dst"))
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: striping: %w", err)
	}
	n, bw := sys.Planner.SuggestStripes(path, max)
	return n, bw * 8 / 1e6, nil
}
