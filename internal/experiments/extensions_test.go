package experiments

import (
	"strings"
	"testing"
)

func TestHostAwareComparison(t *testing.T) {
	rows, err := HostAwareComparison(1, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	paper, aware := rows[0], rows[1]
	if paper.Cases == 0 || aware.Cases == 0 {
		t.Fatalf("empty rows: %+v", rows)
	}
	// The host-aware variant must not do worse than the paper's
	// scheduler on the same schedule (it prunes relays that depot
	// forwarding would throttle).
	if aware.MeanSpeedup < paper.MeanSpeedup-0.02 {
		t.Fatalf("host-aware (%0.3f) worse than paper (%0.3f)",
			aware.MeanSpeedup, paper.MeanSpeedup)
	}
	if !strings.Contains(FormatHostAwareComparison(rows), "host-transit") {
		t.Fatal("rendering incomplete")
	}
}

func TestPSocketsComparison(t *testing.T) {
	rows, err := PSocketsComparison(1, 16<<20, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // direct, x2, x4, lsl, lsl+x2
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PSocketsRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	// Striping multiplies window-limited throughput near-linearly.
	if sp := byName["parallel x2"].Speedup; sp < 1.6 || sp > 2.4 {
		t.Fatalf("parallel x2 speedup = %.2f", sp)
	}
	if sp := byName["parallel x4"].Speedup; sp < 2.8 || sp > 4.6 {
		t.Fatalf("parallel x4 speedup = %.2f", sp)
	}
	// One depot halves the RTT: about 2x.
	if sp := byName["LSL via 1 depot"].Speedup; sp < 1.5 || sp > 2.5 {
		t.Fatalf("LSL speedup = %.2f", sp)
	}
	// The approaches compose.
	if sp := byName["LSL + parallel x2"].Speedup; sp < byName["LSL via 1 depot"].Speedup {
		t.Fatalf("composition did not help: %.2f", sp)
	}
	if !strings.Contains(FormatPSocketsComparison(rows), "PSockets") {
		t.Fatal("rendering incomplete")
	}
}

func TestContentionSweep(t *testing.T) {
	rows, err := ContentionSweep(1, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Per-session bandwidth decays with concurrency.
	for i := 1; i < len(rows); i++ {
		if rows[i].PerSession >= rows[i-1].PerSession {
			t.Fatalf("per-session bandwidth did not decay: %+v", rows)
		}
	}
	// A lone session through a healthy depot wins (~2x); a saturated
	// depot loses to direct.
	if rows[0].MeanSpeedup < 1.5 {
		t.Fatalf("solo speedup = %.2f", rows[0].MeanSpeedup)
	}
	if rows[2].MeanSpeedup > 0.6 {
		t.Fatalf("saturated speedup = %.2f, expected the depot to lose", rows[2].MeanSpeedup)
	}
	// The aggregate saturates near forwardRate/2 (every byte crosses
	// the engine twice) and never exceeds it.
	for _, r := range rows {
		if mb := r.Aggregate; mb > 3.3e6 {
			t.Fatalf("aggregate %.0f exceeds the shared engine's budget", mb)
		}
	}
	if !strings.Contains(FormatContentionSweep(rows), "contention") {
		t.Fatal("rendering incomplete")
	}
}

func TestCwndTraces(t *testing.T) {
	direct, sub1, sub2, err := CwndTraces(1, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct {
		name string
		tr   interface{ Len() int }
	}{{"direct", direct}, {"sub1", sub1}, {"sub2", sub2}} {
		if s.tr.Len() == 0 {
			t.Fatalf("%s trace empty", s.name)
		}
	}
	// cwnd stays within the 8 MB socket buffers.
	for _, p := range direct.Points {
		if p.Acked > 8<<20 {
			t.Fatalf("direct cwnd %d exceeds window", p.Acked)
		}
	}
	out := FormatCwndTraces(direct, sub1, sub2)
	if !strings.Contains(out, "sublink1") {
		t.Fatal("rendering incomplete")
	}
}

func TestRobustness(t *testing.T) {
	rows, err := Robustness([]int64{1, 2}, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RelayedPct < 10 || r.RelayedPct > 60 {
			t.Fatalf("seed %d relayed %.1f%% outside plausible band", r.Seed, r.RelayedPct)
		}
		if r.MeanSpeedup < 0.8 || r.MeanSpeedup > 1.5 {
			t.Fatalf("seed %d mean speedup %.3f outside plausible band", r.Seed, r.MeanSpeedup)
		}
	}
	if !strings.Contains(FormatRobustness(rows), "across seeds") {
		t.Fatal("rendering incomplete")
	}
}
