package experiments

import (
	"strings"
	"testing"
)

func TestEpsilonSweepMonotoneRelays(t *testing.T) {
	rows, err := EpsilonSweep(1, []float64{0, 0.1, 0.3}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RelayedFraction > rows[i-1].RelayedFraction+0.01 {
			t.Fatalf("relayed fraction rose with epsilon: %+v", rows)
		}
	}
	// ε=0 must relay the vast majority (noise ties); ε=0.3 a minority.
	if rows[0].RelayedFraction < 0.8 {
		t.Fatalf("ε=0 relayed only %.2f", rows[0].RelayedFraction)
	}
	if rows[2].RelayedFraction > 0.4 {
		t.Fatalf("ε=0.3 relayed %.2f", rows[2].RelayedFraction)
	}
	if !strings.Contains(FormatEpsilonSweep(rows), "epsilon") {
		t.Fatal("rendering incomplete")
	}
}

func TestBufferSweepKneeTracksBuffer(t *testing.T) {
	rows, err := BufferSweep(1, []int64{2 << 20, 8 << 20, 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxLeadBytes < rows[i-1].MaxLeadBytes {
			t.Fatalf("lead not monotone in buffer: %+v", rows)
		}
	}
	// Small buffers: lead ≈ buffer (+ in-flight window).
	if lead := rows[0].MaxLeadBytes; lead > rows[0].PipelineBytes+(2<<20) {
		t.Fatalf("lead %d far exceeds 2MB pipeline", lead)
	}
	// Throughput stays within a few percent across buffers (the
	// bottleneck sublink governs).
	for _, r := range rows[1:] {
		ratio := r.Bandwidth / rows[0].Bandwidth
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("throughput sensitive to buffer: %+v", rows)
		}
	}
	if !strings.Contains(FormatBufferSweep(rows), "buffer") {
		t.Fatal("rendering incomplete")
	}
}

func TestLossSweepSpeedupGrows(t *testing.T) {
	rows, err := LossSweep(1, []float64{1e-5, 1.6e-4, 6.4e-4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[len(rows)-1].Speedup <= rows[0].Speedup {
		t.Fatalf("speedup should grow with loss: %+v", rows)
	}
	for _, r := range rows {
		if r.RelayedBW <= 0 || r.DirectBW <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	if !strings.Contains(FormatLossSweep(rows), "loss") {
		t.Fatal("rendering incomplete")
	}
}

func TestFreshnessSweepRuns(t *testing.T) {
	rows, err := FreshnessSweep(1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cases == 0 || r.MeanSpeedup <= 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
	if !strings.Contains(FormatFreshnessSweep(rows), "policy") {
		t.Fatal("rendering incomplete")
	}
}

func TestBaselineComparison(t *testing.T) {
	rows, err := BaselineComparison(1, 900)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Minimax relays; the additive metric essentially never does on a
	// fully connected graph; always-direct never does by construction.
	if rows[0].MeanHops < 1 {
		t.Fatalf("minimax relays/path = %.2f, want >= 1", rows[0].MeanHops)
	}
	if rows[1].MeanHops > 0.2 {
		t.Fatalf("shortest-path relays/path = %.2f, want ≈0", rows[1].MeanHops)
	}
	if rows[2].MeanHops != 0 {
		t.Fatalf("always-direct relays/path = %.2f", rows[2].MeanHops)
	}
	// Common random numbers: the two non-relaying policies measure the
	// same schedule, so their means coincide closely.
	diff := rows[1].MeanSpeedup - rows[2].MeanSpeedup
	if diff < -0.02 || diff > 0.02 {
		t.Fatalf("non-relaying baselines diverged: %+v", rows)
	}
	if !strings.Contains(FormatBaselineComparison(rows), "minimax") {
		t.Fatal("rendering incomplete")
	}
}
