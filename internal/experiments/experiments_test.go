package experiments

import (
	"strings"
	"testing"
)

// Iterations are reduced relative to the paper's 10 runs to keep the
// test suite fast; the assertions target shape, not precision.

func TestFig2Shape(t *testing.T) {
	c, err := Fig2(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sizes) != 7 || c.Sizes[0] != 1<<20 || c.Sizes[6] != 64<<20 {
		t.Fatalf("sizes = %v", c.Sizes)
	}
	// LSL beats direct at every size (paper's Figure 2 separation).
	for i := range c.Sizes {
		if c.LSLMbit[i] <= c.DirectMbit[i]*0.95 {
			t.Fatalf("size %dM: LSL %.1f <= direct %.1f", c.Sizes[i]>>20, c.LSLMbit[i], c.DirectMbit[i])
		}
	}
	// Bandwidth grows with size for both curves (slow-start
	// amortization): the largest size beats the smallest severalfold.
	if c.LSLMbit[6] < 2*c.LSLMbit[0] {
		t.Fatalf("LSL curve flat: %v", c.LSLMbit)
	}
	if c.DirectMbit[6] < 1.5*c.DirectMbit[0] {
		t.Fatalf("direct curve flat: %v", c.DirectMbit)
	}
	// Steady-state speedup is substantial (paper: ≈2x at 64 MB).
	if sp := c.LSLMbit[6] / c.DirectMbit[6]; sp < 1.3 {
		t.Fatalf("64MB speedup = %.2f", sp)
	}
	if !strings.Contains(c.String(), "UIUC") {
		t.Fatal("rendering should name the path")
	}
}

func TestFig3Shape(t *testing.T) {
	c, err := Fig3(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sizes) != 8 || c.Sizes[7] != 128<<20 {
		t.Fatalf("sizes = %v", c.Sizes)
	}
	for i := range c.Sizes {
		if c.LSLMbit[i] <= c.DirectMbit[i]*0.95 {
			t.Fatalf("size %dM: LSL %.1f <= direct %.1f", c.Sizes[i]>>20, c.LSLMbit[i], c.DirectMbit[i])
		}
	}
	// The UF path reaches higher absolute bandwidth than the UIUC path
	// (paper: 128 vs 64 Mbit/s scale).
	uiuc, err := Fig2(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.LSLMbit[7] <= uiuc.LSLMbit[6] {
		t.Fatalf("UF plateau %.1f should exceed UIUC plateau %.1f", c.LSLMbit[7], uiuc.LSLMbit[6])
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's signature: the two sublink slopes are close (subpath 1
	// is the bottleneck), and the lead stays far below the pipeline.
	ratio := r.Sub1Slope / r.Sub2Slope
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("sublink slope ratio = %.2f, want ≈1", ratio)
	}
	if r.MaxLead > r.DepotPipeline/2 {
		t.Fatalf("lead %.1fMB approaches pipeline %.0fMB; wrong bottleneck",
			float64(r.MaxLead)/(1<<20), float64(r.DepotPipeline)/(1<<20))
	}
	if r.Sub1.Final().Acked != 64<<20 {
		t.Fatalf("sublink 1 moved %d bytes", r.Sub1.Final().Acked)
	}
	if !strings.Contains(r.String(), "steady slopes") {
		t.Fatal("rendering incomplete")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5's signature: sublink 1 outruns sublink 2 until the depot
	// pipeline fills — the lead approaches the 32 MB pipeline.
	if r.Sub1Slope < 1.2*r.Sub2Slope {
		t.Fatalf("sublink 1 (%.1f MB/s) should outrun sublink 2 (%.1f MB/s)",
			r.Sub1Slope/(1<<20), r.Sub2Slope/(1<<20))
	}
	lead := float64(r.MaxLead)
	pipeline := float64(r.DepotPipeline)
	if lead < 0.5*pipeline {
		t.Fatalf("lead %.1fMB never approached pipeline %.0fMB",
			lead/(1<<20), pipeline/(1<<20))
	}
	if lead > 1.1*pipeline {
		t.Fatalf("lead %.1fMB exceeds pipeline %.0fMB", lead/(1<<20), pipeline/(1<<20))
	}
}

func TestRTTTable(t *testing.T) {
	rows, err := RTTs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"87ms", "68ms", "34ms", "70ms", "46ms", "45ms"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s in:\n%s", want, joined)
		}
	}
}

func TestTreeComparison(t *testing.T) {
	out := TreeComparison(0.1)
	if !strings.Contains(out, "ash.ucsb.edu -> opus.uiuc.edu -> bell.uiuc.edu") {
		t.Fatalf("exact tree should relay via opus:\n%s", out)
	}
	if !strings.Contains(out, "path to bell.uiuc.edu, epsilon=0.10: ash.ucsb.edu -> bell.uiuc.edu") {
		t.Fatalf("ε tree should go direct:\n%s", out)
	}
}

func TestAggregateSmall(t *testing.T) {
	cfg := DefaultAggregate()
	cfg.Measurements = 1200
	cfg.ReplanEvery = 0
	res, err := Aggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 142 {
		t.Fatalf("hosts = %d", res.Hosts)
	}
	if res.Measurements != 1200 {
		t.Fatalf("measurements = %d", res.Measurements)
	}
	// Paper's headline: scheduler picks depots for a minority (~26%).
	if res.RelayedFraction < 0.1 || res.RelayedFraction > 0.6 {
		t.Fatalf("relayed fraction = %.2f", res.RelayedFraction)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no size rows")
	}
	for _, row := range res.Rows {
		if row.Box.Min > row.Box.Median || row.Box.Median > row.Box.Max {
			t.Fatalf("row %v quartiles broken: %+v", row.Size, row.Box)
		}
	}
	if !strings.Contains(res.String(), "depot routes") {
		t.Fatal("rendering incomplete")
	}
}

func TestAggregateSpeedupBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-shape check is slow")
	}
	cfg := DefaultAggregate()
	cfg.Measurements = 6000
	res, err := Aggregate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean speedups should land near the paper's 1.05-1.09 band; allow
	// a generous envelope for seed variation.
	var sum float64
	for _, row := range res.Rows {
		sum += row.Mean
	}
	mean := sum / float64(len(res.Rows))
	if mean < 0.95 || mean > 1.30 {
		t.Fatalf("grand mean speedup = %.3f, want ≈1.05-1.09", mean)
	}
	// Quartiles straddle 1 for most sizes (paper Figure 10).
	straddle := 0
	for _, row := range res.Rows {
		if row.Box.Q1 < 1 && row.Box.Q3 > 1 {
			straddle++
		}
	}
	if straddle < len(res.Rows)/2 {
		t.Fatalf("only %d/%d rows straddle 1", straddle, len(res.Rows))
	}
}

func TestCoreSmall(t *testing.T) {
	cfg := DefaultCore()
	cfg.Reps16 = 2
	cfg.Reps128 = 1
	res, err := Core(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Universities != 10 || res.Depots != 11 {
		t.Fatalf("shape: %d universities, %d depots", res.Universities, res.Depots)
	}
	if res.TotalPairs != 90 {
		t.Fatalf("pairs = %d", res.TotalPairs)
	}
	// The schedulers should pick core depots for most university pairs.
	if res.RelayedPairs < res.TotalPairs/2 {
		t.Fatalf("relayed pairs = %d/%d", res.RelayedPairs, res.TotalPairs)
	}
	if len(res.SampleRelayPath) < 3 {
		t.Fatalf("sample path = %v", res.SampleRelayPath)
	}
	// Relays must traverse observatory depots.
	mid := res.SampleRelayPath[1 : len(res.SampleRelayPath)-1]
	for _, h := range mid {
		if !strings.Contains(h, "abilene.net") {
			t.Fatalf("relay %s is not a core depot", h)
		}
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 16MB and 128MB", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Median above 1, substantial upside — the Figure 11 shape.
		if row.Box.Median < 1 {
			t.Fatalf("median speedup %.2f < 1 at %v", row.Box.Median, row.Size)
		}
		if row.Box.Max < 1.5 {
			t.Fatalf("max speedup %.2f too small at %v", row.Box.Max, row.Size)
		}
	}
	if !strings.Contains(res.String(), "Core-depot") {
		t.Fatal("rendering incomplete")
	}
}

func TestExampleGraphProperties(t *testing.T) {
	g := ExampleGraph()
	if g.N() != 6 {
		t.Fatalf("nodes = %d", g.N())
	}
	// Graph is symmetric and fully connected.
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if i == j {
				continue
			}
			a := g.Cost(nodeID(i), nodeID(j))
			b := g.Cost(nodeID(j), nodeID(i))
			if a != b {
				t.Fatalf("asymmetric edge %d-%d", i, j)
			}
		}
	}
}
