package experiments

import (
	"strings"
	"testing"
)

// TestCacheOffloadAcceptance runs the subsystem's acceptance sweep
// in-repo: warm must be a full cache hit at ≥2x the cold bandwidth,
// and the tamper run must fall back to the origin with the sink digest
// verifying throughout.
func TestCacheOffloadAcceptance(t *testing.T) {
	rows, err := CacheOffload(CacheOffloadConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byPhase := make(map[string]CacheOffloadRow, 3)
	for _, r := range rows {
		if !r.Delivered {
			t.Fatalf("phase %s did not deliver: %+v", r.Phase, r)
		}
		if r.Digest != 0 {
			t.Fatalf("phase %s digest mismatches: %+v", r.Phase, r)
		}
		byPhase[r.Phase] = r
	}
	cold, warm, tamper := byPhase["cold"], byPhase["warm"], byPhase["tamper"]
	if cold.Holder != "" || cold.OriginBytes != cold.Bytes {
		t.Fatalf("cold run not all-origin: %+v", cold)
	}
	if warm.OriginBytes != 0 || warm.CachedBytes != warm.Bytes || warm.Holder == "" {
		t.Fatalf("warm run not a full cache hit: %+v", warm)
	}
	if warm.Mbps < 2*cold.Mbps {
		t.Fatalf("warm bandwidth %.2f Mbps < 2x cold %.2f Mbps", warm.Mbps, cold.Mbps)
	}
	if tamper.OriginBytes == 0 || tamper.Fallbacks < 1 {
		t.Fatalf("tamper run did not fall back to origin: %+v", tamper)
	}
	out := FormatCacheOffload(rows)
	if !strings.Contains(out, "verdict: PASS") {
		t.Fatalf("formatted sweep did not pass:\n%s", out)
	}
}
