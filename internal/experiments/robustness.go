package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/stats"
)

// RobustnessRow is one seed's headline numbers.
type RobustnessRow struct {
	Seed        int64
	RelayedPct  float64
	MeanSpeedup float64
	MedianSpeed float64
	PctOver     float64 // mean crossover percentile across sizes
}

// Robustness reruns the Figure 9 aggregate evaluation across several
// independently drawn testbeds and measurement seeds, reporting the
// headline statistics per seed — the reproduction-quality check that a
// single lucky seed is not carrying the result.
func Robustness(seeds []int64, measurements int) ([]RobustnessRow, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	if measurements <= 0 {
		measurements = 4000
	}
	rows := make([]RobustnessRow, 0, len(seeds))
	for _, seed := range seeds {
		cfg := DefaultAggregate()
		cfg.Seed = seed
		cfg.Measurements = measurements
		cfg.ReplanEvery = 0
		res, err := Aggregate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness seed %d: %w", seed, err)
		}
		row := RobustnessRow{Seed: seed, RelayedPct: 100 * res.RelayedFraction}
		var means, medians, pcts []float64
		for _, r := range res.Rows {
			means = append(means, r.Mean)
			medians = append(medians, r.Box.Median)
			if r.PctOK {
				pcts = append(pcts, float64(r.PctOver))
			}
		}
		row.MeanSpeedup = stats.Mean(means)
		row.MedianSpeed = stats.Mean(medians)
		row.PctOver = stats.Mean(pcts)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRobustness renders the per-seed table plus a summary band.
func FormatRobustness(rows []RobustnessRow) string {
	var b strings.Builder
	b.WriteString("Robustness: Figure 9 headlines across independent seeds\n")
	fmt.Fprintf(&b, "%6s %10s %13s %13s %8s\n", "seed", "relayed%", "mean speedup", "median", "pct>1")
	var relayed, mean []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %9.1f%% %12.3fx %12.3fx %8.1f\n",
			r.Seed, r.RelayedPct, r.MeanSpeedup, r.MedianSpeed, r.PctOver)
		relayed = append(relayed, r.RelayedPct)
		mean = append(mean, r.MeanSpeedup)
	}
	if len(rows) > 1 {
		fmt.Fprintf(&b, "across seeds: relayed %.1f%%±%.1f, mean speedup %.3f±%.3f (paper: 26%%, 1.0575-1.09)\n",
			stats.Mean(relayed), stats.StdDev(relayed),
			stats.Mean(mean), stats.StdDev(mean))
	}
	return b.String()
}
