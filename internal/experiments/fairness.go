package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/loadgen"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/workload"
)

// FairnessConfig parameterizes the weighted fair-sharing experiment.
type FairnessConfig struct {
	Seed int64
	// Sessions run concurrently through the shared depot (default 9,
	// three per weight class).
	Sessions int
	// Size is the weight-1 transfer size; a weight-w session moves w×
	// this, so under perfect proportional sharing every session finishes
	// together and measured bandwidth ratios equal the weight ratios.
	Size int64
	// Weights are the competing classes (default 4, 2, 1).
	Weights []uint16
	// TrunkRate is the shared depot's scheduled downstream capacity in
	// wall-clock bytes per second (default 16 MiB/s).
	TrunkRate float64
	// TimeScale compresses the emulation (default 0.05, as in the
	// striping sweep whose topology this experiment reuses).
	TimeScale float64
}

// DefaultFairness returns the configuration behind EXPERIMENTS.md's
// fairness table.
func DefaultFairness() FairnessConfig {
	return FairnessConfig{
		Seed:      1,
		Sessions:  9,
		Size:      1 << 20,
		Weights:   []uint16{4, 2, 1},
		TrunkRate: 16 << 20,
		TimeScale: 0.05,
	}
}

// FairnessResult is the measured outcome of one fairness run.
type FairnessResult struct {
	Report loadgen.Report
	// PerWeight is each weight class's mean throughput (bytes per
	// emulated second).
	PerWeight map[uint16]float64
	// NormalizedJain is Jain's index over weight-normalized per-session
	// throughput: 1.0 means every session got exactly its proportional
	// share.
	NormalizedJain float64
}

// Fairness runs concurrent mixed-weight sessions through one
// fair-share-scheduled depot — the striping sweep's window-limited
// relay topology, with the relay's trunk arbitrated by weighted DRR —
// and reports how closely the measured split tracks the weights.
func Fairness(cfg FairnessConfig) (*FairnessResult, error) {
	def := DefaultFairness()
	if cfg.Sessions <= 0 {
		cfg.Sessions = def.Sessions
	}
	if cfg.Size <= 0 {
		cfg.Size = def.Size
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = def.Weights
	}
	if cfg.TrunkRate <= 0 {
		cfg.TrunkRate = def.TrunkRate
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = def.TimeScale
	}
	tp, err := stripingTopology()
	if err != nil {
		return nil, fmt.Errorf("experiments: fairness: %w", err)
	}
	sys, err := core.NewSystem(tp, core.Config{
		TimeScale: cfg.TimeScale,
		Seed:      cfg.Seed,
		Metrics:   obs.NewRegistry(),
		FairShare: &fairshare.Config{Rate: cfg.TrunkRate},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fairness: %w", err)
	}
	defer sys.Close()

	// Size rides with weight so proportional shares mean simultaneous
	// completion: a weight-4 session moves 4× the weight-1 payload.
	sizes := make([]int64, len(cfg.Weights))
	for i, w := range cfg.Weights {
		sizes[i] = cfg.Size * int64(w)
	}
	rep := loadgen.Run(sys, loadgen.Config{
		Sessions: cfg.Sessions,
		Sizes:    sizes,
		Weights:  cfg.Weights,
		Pairs:    [][2]string{{"src", "dst"}},
		Seed:     cfg.Seed,
	})
	if rep.Failed > 0 {
		return nil, fmt.Errorf("experiments: fairness: %d of %d sessions failed", rep.Failed, len(rep.Sessions))
	}

	var normalized []float64
	for _, s := range rep.Sessions {
		if s.Err == nil && s.Weight > 0 {
			normalized = append(normalized, s.Bandwidth/float64(s.Weight))
		}
	}
	return &FairnessResult{
		Report:         rep,
		PerWeight:      rep.ByWeight(),
		NormalizedJain: stats.JainIndex(normalized),
	}, nil
}

// FormatFairness renders the per-weight table and fairness indices.
func FormatFairness(r *FairnessResult) string {
	var b strings.Builder
	b.WriteString("Fairness: mixed-weight sessions through one scheduled depot trunk\n")
	fmt.Fprintf(&b, "%8s %10s %16s %16s\n", "weight", "sessions", "mean MB/s", "per-unit MB/s")
	ws := make([]int, 0, len(r.PerWeight))
	for w := range r.PerWeight {
		ws = append(ws, int(w))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ws)))
	for _, wi := range ws {
		w := uint16(wi)
		n := 0
		for _, s := range r.Report.Sessions {
			if s.Err == nil && s.Weight == w {
				n++
			}
		}
		mean := r.PerWeight[w]
		fmt.Fprintf(&b, "%8d %10d %16.2f %16.2f\n", w, n, mean/1e6, mean/float64(w)/1e6)
	}
	fmt.Fprintf(&b, "Jain index: %.3f raw, %.3f weight-normalized (1.0 = exact proportional split)\n",
		r.Report.Jain, r.NormalizedJain)
	fmt.Fprintf(&b, "completion latency (emulated): p50 %v  p95 %v  p99 %v\n",
		r.Report.P50.Round(time.Millisecond), r.Report.P95.Round(time.Millisecond),
		r.Report.P99.Round(time.Millisecond))
	return b.String()
}

// LoadgenConfig parameterizes the mesh load / soak harness run.
type LoadgenConfig struct {
	Seed     int64
	Sessions int
	// Arrival paces launches (nil = closed load, everything at once).
	Arrival workload.ArrivalProcess
	// Reliable routes transfers through retry + failover.
	Reliable bool
	// MaxSessions/QueueDepth configure every depot's admission control
	// so an aggressive load exercises queueing (0 = unlimited).
	MaxSessions int
	QueueDepth  int
	TimeScale   float64
}

// DefaultLoadgen drives 200 mixed-size, mixed-weight sessions over the
// paper's two-path testbed with bounded depot admission. A 32-session
// cap sits just under the closed load's natural concurrency, so the
// admission queue engages without refusing anyone.
func DefaultLoadgen() LoadgenConfig {
	return LoadgenConfig{
		Seed:        1,
		Sessions:    200,
		MaxSessions: 32,
		QueueDepth:  64,
		TimeScale:   0.0005,
	}
}

// Loadgen runs the mesh load harness over the two-path testbed —
// work-conserving fair sharing on every depot, bounded admission — and
// renders the report plus the depots' admission counters.
func Loadgen(cfg LoadgenConfig) (string, error) {
	def := DefaultLoadgen()
	if cfg.Sessions <= 0 {
		cfg.Sessions = def.Sessions
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = def.TimeScale
	}
	tp := topo.TwoPath()
	reg := obs.NewRegistry()
	sys, err := core.NewSystem(tp, core.Config{
		TimeScale:   cfg.TimeScale,
		Seed:        cfg.Seed,
		Metrics:     reg,
		FairShare:   &fairshare.Config{},
		MaxSessions: cfg.MaxSessions,
		QueueDepth:  cfg.QueueDepth,
	})
	if err != nil {
		return "", fmt.Errorf("experiments: loadgen: %w", err)
	}
	defer sys.Close()

	// Four weights against the three default sizes: coprime cycles, so
	// every weight class sees every transfer size instead of the
	// by-weight means aliasing the size mix.
	rep := loadgen.Run(sys, loadgen.Config{
		Sessions: cfg.Sessions,
		Weights:  []uint16{1, 2, 4, 8},
		Arrival:  cfg.Arrival,
		Reliable: cfg.Reliable,
		Seed:     cfg.Seed,
	})
	var b strings.Builder
	b.WriteString("Loadgen: mesh load over the two-path testbed\n")
	b.WriteString(rep.String())
	fmt.Fprintf(&b, "admission: %d sessions queued, %d queue timeouts\n",
		reg.Counter(depot.MetricAdmissionQueued).Value(),
		reg.Counter(depot.MetricAdmissionTimeouts).Value())
	return b.String(), nil
}
