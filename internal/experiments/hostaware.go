package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
)

// HostAwareRow summarizes one scheduler variant in the host-transit
// comparison.
type HostAwareRow struct {
	Scheduler       string
	RelayedFraction float64
	MeanSpeedup     float64
	Cases           int
}

// HostAwareComparison implements and evaluates the paper's stated
// future work: "The scheduling algorithms can be trivially extended to
// include the path through the host as another edge whose bandwidth
// must be taken into account." It runs the same pre-generated test
// schedule under the paper's scheduler (host bandwidth ignored) and the
// host-transit-aware variant, on the virtualization-limited PlanetLab
// testbed where the difference matters most.
func HostAwareComparison(seed int64, measurements int) ([]HostAwareRow, error) {
	if measurements <= 0 {
		measurements = 4000
	}
	t := topo.PlanetLab(topo.DefaultPlanetLab(), seed)

	build := func(hostAware bool) (*schedule.Planner, error) {
		p, err := schedule.NewPlanner(t, schedule.DefaultEpsilon)
		if err != nil {
			return nil, err
		}
		p.HostTransit = hostAware
		rng := rand.New(rand.NewSource(seed + 1))
		if err := p.Prime(rng, 20); err != nil {
			return nil, err
		}
		if err := p.Replan(); err != nil {
			return nil, err
		}
		return p, nil
	}
	paper, err := build(false)
	if err != nil {
		return nil, err
	}
	aware, err := build(true)
	if err != nil {
		return nil, err
	}

	// The shared pair pool: pairs either scheduler relays, so both
	// variants face the same workload.
	var eligible [][2]int
	for s := 0; s < t.N(); s++ {
		for d := 0; d < t.N(); d++ {
			if s == d {
				continue
			}
			r1, err := paper.Relayed(s, d)
			if err != nil {
				return nil, err
			}
			r2, err := aware.Relayed(s, d)
			if err != nil {
				return nil, err
			}
			if r1 || r2 {
				eligible = append(eligible, [2]int{s, d})
			}
		}
	}
	genRng := rand.New(rand.NewSource(seed + 2))
	genRng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if len(eligible) > 80 {
		eligible = eligible[:80]
	}

	type testCase struct {
		pair      [2]int
		size      int64
		scheduled bool
	}
	tests := make([]testCase, measurements)
	for i := range tests {
		tests[i] = testCase{
			pair:      eligible[genRng.Intn(len(eligible))],
			size:      int64(1) << (20 + genRng.Intn(7)),
			scheduled: genRng.Intn(2) == 0,
		}
	}

	rows := make([]HostAwareRow, 0, 2)
	for _, variant := range []struct {
		name    string
		planner *schedule.Planner
	}{
		{"paper (host ignored)", paper},
		{"host-transit aware", aware},
	} {
		frac, err := variant.planner.RelayedFraction()
		if err != nil {
			return nil, err
		}
		eng := netsim.New(seed + 3)
		loadRng := rand.New(rand.NewSource(seed + 4))
		agg := stats.NewSpeedupAggregator()
		for _, tc := range tests {
			key := stats.CaseKey{
				Source: t.Hosts[tc.pair[0]].Name,
				Dest:   t.Hosts[tc.pair[1]].Name,
				Size:   tc.size,
			}
			var chain pipesim.Chain
			if tc.scheduled {
				path, err := variant.planner.Path(tc.pair[0], tc.pair[1])
				if err != nil {
					return nil, err
				}
				if len(path) > 2 {
					chain, err = t.RelayChain(path, tc.size, loadRng, false)
					if err != nil {
						return nil, err
					}
				} else {
					chain = t.DirectChain(tc.pair[0], tc.pair[1], tc.size, loadRng, false)
				}
			} else {
				chain = t.DirectChain(tc.pair[0], tc.pair[1], tc.size, loadRng, false)
			}
			res, err := pipesim.Run(eng, chain)
			if err != nil {
				return nil, err
			}
			if tc.scheduled {
				agg.AddScheduled(key, res.Bandwidth)
			} else {
				agg.AddDirect(key, res.Bandwidth)
			}
		}
		var sum float64
		var n int
		for _, xs := range agg.Speedups() {
			for _, x := range xs {
				sum += x
				n++
			}
		}
		row := HostAwareRow{Scheduler: variant.name, RelayedFraction: frac, Cases: n}
		if n > 0 {
			row.MeanSpeedup = sum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatHostAwareComparison renders the comparison.
func FormatHostAwareComparison(rows []HostAwareRow) string {
	var b strings.Builder
	b.WriteString("Extension: host-transit-aware scheduling (paper's future work)\n")
	fmt.Fprintf(&b, "%-22s %10s %12s %8s\n", "scheduler", "relayed%", "mean speedup", "cases")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9.1f%% %11.3fx %8d\n",
			r.Scheduler, 100*r.RelayedFraction, r.MeanSpeedup, r.Cases)
	}
	return b.String()
}
