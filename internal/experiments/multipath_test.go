package experiments

import "testing"

// TestMultipathAggregatesDisjointRoutes is the sweep's acceptance
// criterion: fanning a transfer across the testbed's two edge-disjoint
// routes must deliver at least 1.5x the best single minimax route,
// with the end-to-end digest intact on every rep.
func TestMultipathAggregatesDisjointRoutes(t *testing.T) {
	cfg := DefaultMultipath()
	cfg.Size = 4 << 20
	cfg.Reps = 2
	rows, err := Multipath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	single, both := rows[0], rows[1]
	if single.Paths != 1 || both.Paths != 2 {
		t.Fatalf("route counts = %d, %d, want 1, 2", single.Paths, both.Paths)
	}
	if single.Mbit <= 0 || both.Mbit <= 0 {
		t.Fatalf("non-positive throughput: %+v, %+v", single, both)
	}
	if both.Speedup < 1.5 {
		t.Fatalf("aggregate speedup = %.2fx, want >= 1.5x (single %.2f Mbit/s, both %.2f Mbit/s)",
			both.Speedup, single.Mbit, both.Mbit)
	}
	if !single.Verified || !both.Verified {
		t.Fatalf("digest not intact: single=%v both=%v", single.Verified, both.Verified)
	}
	// The planner's aggregate forecast must also see the second route.
	if both.Predicted <= single.Predicted {
		t.Fatalf("forecast did not grow with the second route: %.2f vs %.2f",
			both.Predicted, single.Predicted)
	}

	out := FormatMultipath(rows)
	if out == "" {
		t.Fatal("empty formatted output")
	}

	n, bw, err := SuggestedPaths(4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || bw <= 0 {
		t.Fatalf("SuggestedPaths = (%d, %.2f), want 2 meaningful routes", n, bw)
	}
}
