package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/stats"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/workload"
)

// AggregateResult is the outcome of the Section 4.2 PlanetLab-style
// run, backing Figures 9 and 10, the crossover-percentile table, and
// the 26%-of-paths statistic.
type AggregateResult struct {
	Hosts           int
	RelayedFraction float64
	Measurements    int
	SkippedTests    int
	Rows            []stats.SizeRow
}

// AggregateConfig tunes the Figure 9/10 experiment.
type AggregateConfig struct {
	Seed         int64
	Measurements int // executed measurements (paper: 362,895)
	Hosts        int // pool size (paper: 142)
	Epsilon      float64
	ReplanEvery  int     // measurements between replans (paper: 5-minute cadence)
	PrimeSamples int     // NWS history per pair before the first plan
	LoadDrift    float64 // per-measurement σ of the slow host-load walk (0 = static loads)
}

// DefaultAggregate returns a configuration that keeps the experiment's
// statistical shape at a laptop-friendly measurement count.
func DefaultAggregate() AggregateConfig {
	return AggregateConfig{
		Seed:         1,
		Measurements: 20000,
		Hosts:        142,
		Epsilon:      schedule.DefaultEpsilon,
		ReplanEvery:  2000,
		PrimeSamples: 20,
	}
}

// Aggregate runs the PlanetLab-style random-test evaluation.
func Aggregate(cfg AggregateConfig) (AggregateResult, error) {
	if cfg.Measurements <= 0 {
		cfg = DefaultAggregate()
	}
	plCfg := topo.DefaultPlanetLab()
	if cfg.Hosts > 0 {
		plCfg.Hosts = cfg.Hosts
	}
	t := topo.PlanetLab(plCfg, cfg.Seed)
	if cfg.LoadDrift > 0 {
		t.EnableLoadDrift(cfg.LoadDrift)
	}
	planner, err := schedule.NewPlanner(t, cfg.Epsilon)
	if err != nil {
		return AggregateResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	if cfg.PrimeSamples <= 0 {
		cfg.PrimeSamples = 3
	}
	if err := planner.Prime(rng, cfg.PrimeSamples); err != nil {
		return AggregateResult{}, err
	}
	if err := planner.Replan(); err != nil {
		return AggregateResult{}, err
	}
	frac, err := planner.RelayedFraction()
	if err != nil {
		return AggregateResult{}, err
	}

	// Concentrate the measurement budget on a pool of pairs for which
	// the scheduler chose depot routes, so each (pair, size) case
	// accumulates several direct and several scheduled observations —
	// the paper's per-case averaging needs both.
	genRng := rand.New(rand.NewSource(cfg.Seed + 300))
	var eligible [][2]int
	for s := 0; s < t.N(); s++ {
		for d := 0; d < t.N(); d++ {
			if s == d {
				continue
			}
			relayed, err := planner.Relayed(s, d)
			if err != nil {
				return AggregateResult{}, err
			}
			if relayed {
				eligible = append(eligible, [2]int{s, d})
			}
		}
	}
	if len(eligible) == 0 {
		return AggregateResult{}, fmt.Errorf("experiments: scheduler found no depot routes")
	}
	poolSize := cfg.Measurements / 140
	if poolSize < 20 {
		poolSize = 20
	}
	genRng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if poolSize < len(eligible) {
		eligible = eligible[:poolSize]
	}

	eng := netsim.New(cfg.Seed + 200)
	runner := workload.NewRunner(t, planner, eng, rng)
	runner.ReplanEvery = cfg.ReplanEvery
	runner.FeedObservations = cfg.ReplanEvery > 0
	runner.ReprimeOnReplan = cfg.ReplanEvery > 0 && cfg.LoadDrift > 0
	gen := workload.NewPoolGenerator(eligible, genRng)
	if err := runner.Run(gen, cfg.Measurements); err != nil {
		return AggregateResult{}, err
	}

	return AggregateResult{
		Hosts:           t.N(),
		RelayedFraction: frac,
		Measurements:    runner.Executed(),
		SkippedTests:    runner.Skipped(),
		Rows:            runner.Agg.BySize(),
	}, nil
}

// String renders the Figure 9/10 report: mean speedup, quartiles, and
// the crossover-percentile table per size.
func (r AggregateResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Aggregate scheduling evaluation: %d hosts, %d measurements (%d tests skipped: direct route chosen)\n",
		r.Hosts, r.Measurements, r.SkippedTests)
	fmt.Fprintf(&b, "scheduler identified depot routes for %.0f%% of paths\n", 100*r.RelayedFraction)
	fmt.Fprintf(&b, "%6s %6s %9s %8s %8s %8s %8s %8s %7s\n",
		"size", "cases", "mean", "min", "q1", "median", "q3", "max", "pct>1")
	for _, row := range r.Rows {
		pct := fmt.Sprintf("%d", row.PctOver)
		if !row.PctOK {
			pct = ">100"
		}
		fmt.Fprintf(&b, "%6s %6d %8.3fx %8.3f %8.3f %8.3f %8.3f %8.3f %7s\n",
			stats.FormatSize(row.Size), row.Cases, row.Mean,
			row.Box.Min, row.Box.Q1, row.Box.Median, row.Box.Q3, row.Box.Max, pct)
	}
	return b.String()
}

// CoreConfig tunes the Figure 11 experiment.
type CoreConfig struct {
	Seed    int64
	Reps16  int // repetitions per pair at 16 MB (paper: 10)
	Reps128 int // repetitions per pair at 128 MB (paper: 5)
	Epsilon float64
}

// DefaultCore matches the paper's second experiment.
func DefaultCore() CoreConfig {
	return CoreConfig{Seed: 1, Reps16: 10, Reps128: 5, Epsilon: schedule.DefaultEpsilon}
}

// CoreResult is the Figure 11 outcome.
type CoreResult struct {
	Universities    int
	Depots          int
	Measurements    int
	RelayedPairs    int
	TotalPairs      int
	Rows            []stats.SizeRow
	SampleRelayPath []string // one planned path, to show core depots got picked
}

// Core runs the Figure 11 experiment: university endpoints on an
// Abilene-like backbone with depots at the core POPs, every ordered
// pair measured directly and over the scheduled route at 16 MB and
// 128 MB. The plan is built once from initial measurements and never
// refreshed, matching the paper ("for the second experiment, it was run
// only initially").
func Core(cfg CoreConfig) (CoreResult, error) {
	if cfg.Reps16 <= 0 {
		cfg = DefaultCore()
	}
	t := topo.AbileneCore(topo.DefaultAbileneCore(), cfg.Seed)
	planner, err := schedule.NewPlanner(t, cfg.Epsilon)
	if err != nil {
		return CoreResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	if err := planner.Prime(rng, 3); err != nil {
		return CoreResult{}, err
	}
	if err := planner.Replan(); err != nil {
		return CoreResult{}, err
	}

	eng := netsim.New(cfg.Seed + 2)
	runner := workload.NewRunner(t, planner, eng, rng)

	unis := topo.AbileneUniversities(t)
	res := CoreResult{
		Universities: len(unis),
		Depots:       len(t.DepotCandidates()),
	}
	for _, src := range unis {
		for _, dst := range unis {
			if src == dst {
				continue
			}
			res.TotalPairs++
			path, err := runner.MeasurePair(src, dst, 16<<20, cfg.Reps16)
			if err != nil {
				return res, err
			}
			if _, err := runner.MeasurePair(src, dst, 128<<20, cfg.Reps128); err != nil {
				return res, err
			}
			if len(path) > 2 {
				res.RelayedPairs++
				if res.SampleRelayPath == nil {
					for _, h := range path {
						res.SampleRelayPath = append(res.SampleRelayPath, t.Hosts[h].Name)
					}
				}
			}
		}
	}
	res.Measurements = runner.Executed()
	res.Rows = runner.Agg.BySize()
	return res, nil
}

// String renders the Figure 11 box summary per transfer size.
func (r CoreResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Core-depot evaluation: %d universities, %d core depots, %d measurements\n",
		r.Universities, r.Depots, r.Measurements)
	fmt.Fprintf(&b, "scheduler chose depot routes for %d/%d pairs\n", r.RelayedPairs, r.TotalPairs)
	if r.SampleRelayPath != nil {
		fmt.Fprintf(&b, "sample scheduled path: %s\n", strings.Join(r.SampleRelayPath, " -> "))
	}
	fmt.Fprintf(&b, "%6s %6s %8s %8s %8s %8s %8s\n",
		"size", "pairs", "min", "q1", "median", "q3", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6s %6d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			stats.FormatSize(row.Size), row.Cases,
			row.Box.Min, row.Box.Q1, row.Box.Median, row.Box.Q3, row.Box.Max)
	}
	return b.String()
}
