package experiments

import (
	"strings"
	"testing"
)

func TestBuildTopology(t *testing.T) {
	for name, wantHosts := range map[string]int{
		"twopath":   5,
		"planetlab": 142,
		"abilene":   21,
	} {
		tp, err := BuildTopology(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tp.N() != wantHosts {
			t.Errorf("%s: hosts = %d, want %d", name, tp.N(), wantHosts)
		}
	}
	if _, err := BuildTopology("nope", 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestDumpMeasurements(t *testing.T) {
	out, err := DumpMeasurements("twopath", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var data int
	for _, l := range lines {
		if strings.HasPrefix(l, "#") {
			continue
		}
		fields := strings.Fields(l)
		if len(fields) != 3 {
			t.Fatalf("malformed line %q", l)
		}
		data++
	}
	// 5 hosts × 4 peers × 2 samples.
	if data != 5*4*2 {
		t.Fatalf("data lines = %d, want 40", data)
	}
	if _, err := DumpMeasurements("nope", 1, 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestDumpMeasurementsDeterministic(t *testing.T) {
	a, err := DumpMeasurements("twopath", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DumpMeasurements("twopath", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed gave different dumps")
	}
}

func TestNWSEvaluation(t *testing.T) {
	out, err := NWSEvaluation(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stationary", "drifting", "spiky", "measured", "selector"} {
		if !strings.Contains(out, want) {
			t.Fatalf("evaluation missing %q", want)
		}
	}
}

func TestMeasuredSeriesAutocorrelated(t *testing.T) {
	s := measuredSeries(1, 300)
	if len(s) != 300 {
		t.Fatalf("len = %d", len(s))
	}
	// Lag-1 autocorrelation should be clearly positive: the load walk
	// makes consecutive measurements related, unlike iid noise.
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	var num, den float64
	for i := 0; i < len(s)-1; i++ {
		num += (s[i] - mean) * (s[i+1] - mean)
	}
	for _, v := range s {
		den += (v - mean) * (v - mean)
	}
	if r := num / den; r < 0.2 {
		t.Fatalf("lag-1 autocorrelation = %.2f, want clearly positive", r)
	}
}
