// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment has one entry point returning a
// printable result; cmd/lsl-exp and the repository benchmarks are thin
// wrappers around these.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/trace"
)

// mbit converts bytes/sec to Mbit/s.
func mbit(bytesPerSec float64) float64 { return bytesPerSec * 8 / 1e6 }

// BandwidthCurve is the Figure 2/3 result: observed direct and LSL
// bandwidth per transfer size.
type BandwidthCurve struct {
	Title      string
	Via        string
	Sizes      []int64
	DirectMbit []float64
	LSLMbit    []float64
	Iterations int
}

// runCurve measures direct vs relayed bandwidth on the two-path testbed.
func runCurve(title string, src, depot, dst string, maxExp int, iterations int, seed int64) (BandwidthCurve, error) {
	t := topo.TwoPath()
	eng := netsim.New(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	si := t.MustHost(src)
	di := t.MustHost(dst)
	mi := t.MustHost(depot)

	curve := BandwidthCurve{Title: title, Via: depot, Iterations: iterations}
	for e := 0; e <= maxExp; e++ {
		size := int64(1) << (20 + e)
		var direct, lsl float64
		for it := 0; it < iterations; it++ {
			res, err := pipesim.Run(eng, t.DirectChain(si, di, size, rng, false))
			if err != nil {
				return curve, fmt.Errorf("experiments: %s direct: %w", title, err)
			}
			direct += res.Bandwidth

			chain, err := t.RelayChain([]int{si, mi, di}, size, rng, false)
			if err != nil {
				return curve, err
			}
			res, err = pipesim.Run(eng, chain)
			if err != nil {
				return curve, fmt.Errorf("experiments: %s lsl: %w", title, err)
			}
			lsl += res.Bandwidth
		}
		curve.Sizes = append(curve.Sizes, size)
		curve.DirectMbit = append(curve.DirectMbit, mbit(direct/float64(iterations)))
		curve.LSLMbit = append(curve.LSLMbit, mbit(lsl/float64(iterations)))
	}
	return curve, nil
}

// Fig2 reproduces Figure 2: transfers from UCSB to UIUC (via the Denver
// depot), 1-64 MB.
func Fig2(seed int64, iterations int) (BandwidthCurve, error) {
	return runCurve("Figure 2: UCSB to UIUC (1MB-64MB)",
		topo.UCSB, topo.Denver, topo.UIUC, 6, iterations, seed)
}

// Fig3 reproduces Figure 3: transfers from UCSB to UF (via the Houston
// depot), 1-128 MB.
func Fig3(seed int64, iterations int) (BandwidthCurve, error) {
	return runCurve("Figure 3: UCSB to UF (1MB-128MB)",
		topo.UCSB, topo.Houston, topo.UF, 7, iterations, seed)
}

// String renders the curve as an aligned table in the paper's units.
func (c BandwidthCurve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (avg of %d runs, depot at %s)\n", c.Title, c.Iterations, c.Via)
	fmt.Fprintf(&b, "%10s %14s %14s %9s\n", "size", "direct Mbit/s", "LSL Mbit/s", "speedup")
	for i, s := range c.Sizes {
		speed := 0.0
		if c.DirectMbit[i] > 0 {
			speed = c.LSLMbit[i] / c.DirectMbit[i]
		}
		fmt.Fprintf(&b, "%9dM %14.2f %14.2f %8.2fx\n",
			s>>20, c.DirectMbit[i], c.LSLMbit[i], speed)
	}
	return b.String()
}

// SeqTraces is the Figure 4/5 result: averaged acknowledged-sequence
// traces for the two sublinks and the direct transfer, with the derived
// bottleneck diagnostics.
type SeqTraces struct {
	Title   string
	Sub1    *trace.Series
	Sub2    *trace.Series
	Direct  *trace.Series
	MaxLead int64 // bytes sublink 1 ran ahead of sublink 2

	Sub1Slope   float64 // steady-region bytes/sec
	Sub2Slope   float64
	DirectSlope float64

	DepotPipeline int64
}

func runTraces(title string, src, depot, dst string, size int64, iterations int, seed int64) (SeqTraces, error) {
	t := topo.TwoPath()
	eng := netsim.New(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	si, mi, di := t.MustHost(src), t.MustHost(depot), t.MustHost(dst)

	var sub1, sub2, direct []*trace.Series
	var leadSum float64
	var s1Sum, s2Sum, dirSum float64
	for it := 0; it < iterations; it++ {
		chain, err := t.RelayChain([]int{si, mi, di}, size, rng, true)
		if err != nil {
			return SeqTraces{}, err
		}
		res, err := pipesim.Run(eng, chain)
		if err != nil {
			return SeqTraces{}, fmt.Errorf("experiments: %s relay: %w", title, err)
		}
		// Rebase each run's traces to its own start time so runs align.
		r1 := rebase(res.Traces[0], res.Start)
		r2 := rebase(res.Traces[1], res.Start)
		sub1 = append(sub1, r1)
		sub2 = append(sub2, r2)
		leadSum += float64(r1.MaxLead(r2))
		s1Sum += steadySlope(r1)
		s2Sum += steadySlope(r2)

		dres, err := pipesim.Run(eng, t.DirectChain(si, di, size, rng, true))
		if err != nil {
			return SeqTraces{}, fmt.Errorf("experiments: %s direct: %w", title, err)
		}
		rd := rebase(dres.Traces[0], dres.Start)
		direct = append(direct, rd)
		dirSum += steadySlope(rd)
	}

	const gridN = 200
	n := float64(iterations)
	out := SeqTraces{
		Title:         title,
		Sub1:          trace.AverageSeries(src+"-"+depot, sub1, gridN),
		Sub2:          trace.AverageSeries(depot+"-"+dst, sub2, gridN),
		Direct:        trace.AverageSeries(src+"-"+dst, direct, gridN),
		DepotPipeline: t.Hosts[mi].PipelineBytes,
		MaxLead:       int64(leadSum / n),
		Sub1Slope:     s1Sum / n,
		Sub2Slope:     s2Sum / n,
		DirectSlope:   dirSum / n,
	}
	return out, nil
}

// rebase shifts a series so its run starts at time zero.
func rebase(s *trace.Series, start simtime.Time) *trace.Series {
	out := trace.NewSeries(s.Name)
	for _, p := range s.Points {
		out.Points = append(out.Points, trace.Point{At: p.At - start, Acked: p.Acked})
	}
	return out
}

// steadySlope measures the growth rate over the middle half of a
// series' lifetime, avoiding both the slow-start ramp and the tail.
func steadySlope(s *trace.Series) float64 {
	end := s.Final().At
	if end <= 0 {
		return 0
	}
	t0 := simtime.Time(0.25 * end.Seconds())
	t1 := simtime.Time(0.75 * end.Seconds())
	return s.Slope(t0, t1)
}

// Fig4 reproduces Figure 4: averaged sequence traces for 64 MB
// transfers from UCSB to UF via Houston, where the first sublink is the
// bottleneck and the two sublink slopes track closely.
func Fig4(seed int64, iterations int) (SeqTraces, error) {
	return runTraces("Figure 4: 64MB UCSB->UF via Houston",
		topo.UCSB, topo.Houston, topo.UF, 64<<20, iterations, seed)
}

// Fig5 reproduces Figure 5: averaged sequence traces for 64 MB
// transfers from UCSB to UIUC via Denver, where the second sublink is
// the bottleneck and sublink 1 runs one depot pipeline (32 MB) ahead
// before bending to sublink 2's slope.
func Fig5(seed int64, iterations int) (SeqTraces, error) {
	return runTraces("Figure 5: 64MB UCSB->UIUC via Denver",
		topo.UCSB, topo.Denver, topo.UIUC, 64<<20, iterations, seed)
}

// String renders the traces and diagnostics.
func (r SeqTraces) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (sequence numbers in MB)\n", r.Title)
	b.WriteString(trace.Table([]*trace.Series{r.Sub1, r.Sub2, r.Direct}, 24))
	fmt.Fprintf(&b, "steady slopes: sublink1=%.2f MB/s sublink2=%.2f MB/s direct=%.2f MB/s\n",
		r.Sub1Slope/(1<<20), r.Sub2Slope/(1<<20), r.DirectSlope/(1<<20))
	fmt.Fprintf(&b, "max sublink-1 lead over sublink-2: %.1f MB (depot pipeline %d MB)\n",
		float64(r.MaxLead)/(1<<20), r.DepotPipeline>>20)
	return b.String()
}

// RTTs reproduces the Section 3 round-trip-time table.
func RTTs() ([]string, error) {
	return topo.TwoPath().RTTTable(topo.PaperRTTPairs())
}
