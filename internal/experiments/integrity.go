package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/netlogistics/lsl/internal/core"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/topo"
)

// IntegrityConfig parameterises the end-to-end integrity acceptance
// sweep. Zero fields take DefaultIntegrity values.
type IntegrityConfig struct {
	Seed      int64
	Size      int64   // bytes per transfer
	CorruptAt int64   // payload bytes forwarded before the fault flips a byte
	TimeScale float64 // emulation time compression
	Attempts  int     // retry budget per transfer
}

// DefaultIntegrity is the configuration the acceptance run uses.
func DefaultIntegrity() IntegrityConfig {
	return IntegrityConfig{Seed: 1, Size: 128 << 10, CorruptAt: 32 << 10, TimeScale: 0.001, Attempts: 6}
}

// IntegrityRow is one corruption site's outcome: where the fault was
// injected, where the chunk verifiers caught it, and whether the
// reliable transfer delivered the full object anyway.
type IntegrityRow struct {
	Hop            string // corrupting host, or "none" for the clean baseline
	Injected       int64  // faults the injector actually fired
	ChecksumErrors int64  // depot_checksum_errors_total across the mesh
	DigestMismatch int64  // core_digest_mismatches_total at the sink
	Retries        int64  // core_retry_attempts_total burned recovering
	ResumedBytes   int64  // bytes the continuations did not re-send
	Bytes          int64  // bytes the sink verified
	Recovered      bool   // transfer completed with the full, correct object
}

// integrityTopology is the sweep's testbed: the same two-relay depot
// chain the reliability suite uses, so a fault at either relay sits
// strictly between sender and sink.
func integrityTopology() (*topo.Topology, error) {
	const (
		mbit = 1e6 / 8
		buf  = int64(8 << 20)
	)
	hosts := []topo.Host{
		{Name: "src", Site: "src", SndBuf: buf, RcvBuf: buf},
		{Name: "relay-a", Site: "a", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "relay-b", Site: "b", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "spare", Site: "c", SndBuf: buf, RcvBuf: buf,
			Depot: true, ForwardRate: 60e6, PipelineBytes: 256 << 10},
		{Name: "dst", Site: "dst", SndBuf: buf, RcvBuf: buf},
	}
	tp, err := topo.New("integrity", hosts)
	if err != nil {
		return nil, err
	}
	ms := simtime.Milliseconds
	set := func(a, b string, capMbit float64) {
		tp.SetLink(tp.MustHost(a), tp.MustHost(b), topo.Link{RTT: ms(10), Capacity: capMbit * mbit})
	}
	set("src", "relay-a", 100)
	set("relay-a", "relay-b", 100)
	set("relay-b", "dst", 100)
	set("src", "spare", 50)
	set("spare", "dst", 50)
	set("src", "dst", 2)
	set("src", "relay-b", 4)
	set("relay-a", "dst", 4)
	set("relay-a", "spare", 4)
	set("relay-b", "spare", 4)
	return tp, nil
}

// Integrity runs the detect-and-recover acceptance sweep: one clean
// baseline transfer, then one transfer per relay with a single byte
// flipped in flight at that relay. Every run uses a fresh system with
// Config.Integrity enabled, so each forwarded chunk is CRC-framed and
// the whole object carries a SHA-256 digest. The sweep passes when the
// baseline counts zero errors and every corrupted run still delivers
// the full object — the fault detected at the corrupting hop, refused
// as transient, and the damaged range re-sent through the resume path.
func Integrity(cfg IntegrityConfig) ([]IntegrityRow, error) {
	def := DefaultIntegrity()
	if cfg.Size <= 0 {
		cfg.Size = def.Size
	}
	if cfg.CorruptAt <= 0 {
		cfg.CorruptAt = def.CorruptAt
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = def.TimeScale
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = def.Attempts
	}

	sites := []string{"none", "relay-a", "relay-b"}
	rows := make([]IntegrityRow, 0, len(sites))
	for _, site := range sites {
		row, err := integrityRun(cfg, site)
		if err != nil {
			return nil, fmt.Errorf("experiments: integrity %s: %w", site, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// integrityRun performs one transfer with (or, for "none", without) a
// corruption fault armed at the named relay, on a fresh system so the
// counters are attributable to this run alone.
func integrityRun(cfg IntegrityConfig, site string) (IntegrityRow, error) {
	tp, err := integrityTopology()
	if err != nil {
		return IntegrityRow{}, err
	}
	reg := obs.NewRegistry()
	sys, err := core.NewSystem(tp, core.Config{
		TimeScale: cfg.TimeScale,
		Seed:      cfg.Seed,
		Metrics:   reg,
		Integrity: true,
	})
	if err != nil {
		return IntegrityRow{}, err
	}
	defer sys.Close()

	var inj *depot.FaultInjector
	if site != "none" {
		inj, err = sys.Fault(site)
		if err != nil {
			return IntegrityRow{}, err
		}
		inj.CorruptAfter(cfg.CorruptAt)
	}

	res, terr := sys.TransferReliable("src", "dst", cfg.Size, core.RecoveryPolicy{
		Retry: retry.Policy{
			MaxAttempts: cfg.Attempts,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Multiplier:  2,
		},
		AttemptTimeout: 10 * time.Second,
	})

	row := IntegrityRow{
		Hop:            site,
		ChecksumErrors: reg.Counter(depot.MetricChecksumErrors).Value(),
		DigestMismatch: reg.Counter(core.MetricDigestMismatches).Value(),
		Retries:        reg.Counter(core.MetricRetryAttempts).Value(),
		ResumedBytes:   reg.Counter(core.MetricResumedBytes).Value(),
		Bytes:          res.Bytes,
		Recovered:      terr == nil && res.Bytes == cfg.Size,
	}
	if inj != nil {
		row.Injected = inj.Injected()
	}
	return row, nil
}

// FormatIntegrity renders the sweep table plus a pass/fail verdict.
func FormatIntegrity(rows []IntegrityRow) string {
	var b strings.Builder
	b.WriteString("Integrity: single-hop corruption detected and recovered end to end\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %8s %8s %10s %10s %10s\n",
		"corrupt@", "injected", "crc_errors", "digest", "retries", "resumed_B", "bytes", "recovered")
	ok := true
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10d %8d %8d %10d %10d %10v\n",
			r.Hop, r.Injected, r.ChecksumErrors, r.DigestMismatch, r.Retries, r.ResumedBytes, r.Bytes, r.Recovered)
		if !r.Recovered {
			ok = false
		}
		if r.Hop == "none" && (r.ChecksumErrors > 0 || r.DigestMismatch > 0) {
			ok = false
		}
	}
	if ok {
		b.WriteString("verdict: PASS — every injected fault was caught at the corrupting hop and re-sent via resume\n")
	} else {
		b.WriteString("verdict: FAIL — at least one run lost data or miscounted a clean transfer\n")
	}
	return b.String()
}
