package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpsim"
)

// PSocketsRow summarizes one transfer strategy on the window-limited
// reference path.
type PSocketsRow struct {
	Strategy  string
	Bandwidth float64 // bytes/sec
	Speedup   float64 // vs single direct connection
}

// PSocketsComparison contrasts the paper's serial-socket approach with
// the PSockets-style parallel-socket striping it cites as related work
// ("that work is focused on an application-level solution rather than
// 'in the network' support"): one window-limited 80 ms path, a transfer
// striped over k parallel connections, and the same transfer relayed
// through a mid-path depot. Both defeat the per-connection window
// limit; parallel sockets multiply aggregate window, the depot halves
// the RTT each window must cover — and only the depot approach also
// shortens the loss-recovery control loop.
func PSocketsComparison(seed int64, size int64, streams []int) ([]PSocketsRow, error) {
	if size <= 0 {
		size = 32 << 20
	}
	if len(streams) == 0 {
		streams = []int{2, 4, 8}
	}
	const (
		capacity = 12.5e6 // 100 Mbit path
		loss     = 2e-5
		window   = 64 << 10 // the PlanetLab-era socket buffers
	)
	full := tcpsim.Config{
		RTT:      simtime.Milliseconds(80),
		Capacity: capacity,
		LossRate: loss,
		SndBuf:   window,
		RcvBuf:   window,
	}
	half := full
	half.RTT = simtime.Milliseconds(40)
	half.LossRate = loss / 2

	rows := make([]PSocketsRow, 0, len(streams)+2)

	// Single direct connection: the baseline.
	eng := netsim.New(seed)
	res, err := pipesim.Run(eng, pipesim.Direct(size, "direct", full))
	if err != nil {
		return nil, err
	}
	base := res.Bandwidth
	rows = append(rows, PSocketsRow{Strategy: "single direct", Bandwidth: base, Speedup: 1})

	// PSockets-style striping: k connections share the bottleneck
	// fairly and each carries size/k.
	for _, k := range streams {
		eng := netsim.New(seed)
		perConn := full
		perConn.Capacity = capacity / float64(k)
		chains := make([]pipesim.Chain, k)
		share := size / int64(k)
		for i := range chains {
			s := share
			if i == 0 {
				s += size - share*int64(k) // remainder
			}
			chains[i] = pipesim.Direct(s, fmt.Sprintf("stripe-%d", i), perConn)
		}
		results, err := pipesim.RunMany(eng, chains)
		if err != nil {
			return nil, err
		}
		var end simtime.Time
		for _, r := range results {
			if r.End > end {
				end = r.End
			}
		}
		bw := float64(size) / end.Sub(results[0].Start).Seconds()
		rows = append(rows, PSocketsRow{
			Strategy:  fmt.Sprintf("parallel x%d", k),
			Bandwidth: bw,
			Speedup:   bw / base,
		})
	}

	// The serial-socket (LSL) alternative: one depot at the midpoint.
	eng = netsim.New(seed)
	res, err = pipesim.Run(eng, pipesim.Relayed(size,
		[]pipesim.Hop{{Name: "sub1", TCP: half}, {Name: "sub2", TCP: half}},
		[]pipesim.Depot{{}},
	))
	if err != nil {
		return nil, err
	}
	rows = append(rows, PSocketsRow{
		Strategy:  "LSL via 1 depot",
		Bandwidth: res.Bandwidth,
		Speedup:   res.Bandwidth / base,
	})

	// And both together: the approaches compose.
	eng = netsim.New(seed)
	k := 2
	perConn := half
	perConn.Capacity = capacity / float64(k)
	chains := make([]pipesim.Chain, k)
	for i := range chains {
		chains[i] = pipesim.Relayed(size/int64(k),
			[]pipesim.Hop{{TCP: perConn}, {TCP: perConn}},
			[]pipesim.Depot{{}})
	}
	results, err := pipesim.RunMany(eng, chains)
	if err != nil {
		return nil, err
	}
	var end simtime.Time
	for _, r := range results {
		if r.End > end {
			end = r.End
		}
	}
	bw := float64(size) / end.Sub(results[0].Start).Seconds()
	rows = append(rows, PSocketsRow{
		Strategy:  "LSL + parallel x2",
		Bandwidth: bw,
		Speedup:   bw / base,
	})
	return rows, nil
}

// FormatPSocketsComparison renders the comparison.
func FormatPSocketsComparison(rows []PSocketsRow) string {
	var b strings.Builder
	b.WriteString("Related work: parallel sockets (PSockets) vs serial sockets (LSL)\n")
	b.WriteString("(32MB over a window-limited 80ms, 100Mbit path)\n")
	fmt.Fprintf(&b, "%-20s %14s %9s\n", "strategy", "BW Mbit/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %14.2f %8.2fx\n", r.Strategy, mbit(r.Bandwidth), r.Speedup)
	}
	return b.String()
}
