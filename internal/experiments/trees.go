package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/graph"
)

// ExampleGraph builds the paper's Figures 6-8 example: two hosts at
// UCSB and two at UIUC plus a pair at a third site, with edge costs
// arranged so that exact minimax (ε=0) lengthens the path from
// ash.ucsb.edu to bell.uiuc.edu through opus.uiuc.edu for a marginal
// 0.4 cost difference, while ε=0.1 treats those edges as equivalent and
// keeps the direct edge.
func ExampleGraph() *graph.Graph {
	g := graph.MustNew([]string{
		"ash.ucsb.edu",
		"oak.ucsb.edu",
		"bell.uiuc.edu",
		"opus.uiuc.edu",
		"kite.utk.edu",
		"knot.utk.edu",
	})
	id := func(n string) graph.NodeID {
		v, ok := g.Lookup(n)
		if !ok {
			panic("experiments: missing node " + n)
		}
		return v
	}
	// Intra-site LAN edges are cheap.
	g.SetCostSym(id("ash.ucsb.edu"), id("oak.ucsb.edu"), 0.3)
	g.SetCostSym(id("bell.uiuc.edu"), id("opus.uiuc.edu"), 0.3)
	g.SetCostSym(id("kite.utk.edu"), id("knot.utk.edu"), 0.3)
	// UCSB <-> UIUC: functionally identical host pairs whose measured
	// costs differ only slightly.
	g.SetCostSym(id("ash.ucsb.edu"), id("opus.uiuc.edu"), 5.1)
	g.SetCostSym(id("ash.ucsb.edu"), id("bell.uiuc.edu"), 5.5)
	g.SetCostSym(id("oak.ucsb.edu"), id("opus.uiuc.edu"), 5.4)
	g.SetCostSym(id("oak.ucsb.edu"), id("bell.uiuc.edu"), 5.6)
	// UCSB <-> UTK and UIUC <-> UTK.
	g.SetCostSym(id("ash.ucsb.edu"), id("kite.utk.edu"), 7.2)
	g.SetCostSym(id("ash.ucsb.edu"), id("knot.utk.edu"), 7.4)
	g.SetCostSym(id("oak.ucsb.edu"), id("kite.utk.edu"), 7.5)
	g.SetCostSym(id("oak.ucsb.edu"), id("knot.utk.edu"), 7.3)
	g.SetCostSym(id("bell.uiuc.edu"), id("kite.utk.edu"), 3.9)
	g.SetCostSym(id("bell.uiuc.edu"), id("knot.utk.edu"), 4.1)
	g.SetCostSym(id("opus.uiuc.edu"), id("kite.utk.edu"), 4.0)
	g.SetCostSym(id("opus.uiuc.edu"), id("knot.utk.edu"), 4.2)
	return g
}

// TreeComparison reproduces Figures 7 and 8: the MMP tree from
// ash.ucsb.edu with ε=0 (over-complex, using marginally better edges)
// and with the given ε (damped).
func TreeComparison(epsilon float64) string {
	g := ExampleGraph()
	root, _ := g.Lookup("ash.ucsb.edu")
	exact := graph.MinimaxTree(g, root, 0)
	damped := graph.MinimaxTree(g, root, epsilon)
	var b strings.Builder
	fmt.Fprintf(&b, "MMP tree from ash.ucsb.edu, epsilon=0 (Figure 7):\n%s\n", exact)
	fmt.Fprintf(&b, "MMP tree from ash.ucsb.edu, epsilon=%.2f (Figure 8):\n%s\n", epsilon, damped)
	bell, _ := g.Lookup("bell.uiuc.edu")
	fmt.Fprintf(&b, "path to bell.uiuc.edu, epsilon=0:    %s\n", pathString(g, exact.PathTo(bell)))
	fmt.Fprintf(&b, "path to bell.uiuc.edu, epsilon=%.2f: %s\n", epsilon, pathString(g, damped.PathTo(bell)))
	return b.String()
}

func pathString(g *graph.Graph, path []graph.NodeID) string {
	if path == nil {
		return "(unreachable)"
	}
	names := make([]string, len(path))
	for i, v := range path {
		names[i] = g.Name(v)
	}
	return strings.Join(names, " -> ")
}

// nodeID converts an int for test convenience.
func nodeID(i int) graph.NodeID { return graph.NodeID(i) }
