package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/netsim"
	"github.com/netlogistics/lsl/internal/pipesim"
	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/tcpsim"
	"github.com/netlogistics/lsl/internal/trace"
)

// ContentionRow summarizes one concurrency level at a shared depot.
type ContentionRow struct {
	Sessions    int
	PerSession  float64 // mean per-session bandwidth, bytes/sec
	Aggregate   float64 // total bytes moved / wall time
	DirectEach  float64 // what each session would get going direct
	MeanSpeedup float64 // per-session bandwidth vs direct
}

// ContentionSweep answers the paper's closing question — "we must
// consider the scalability of host-based forwarding" — by pushing k
// concurrent sessions through one depot whose forwarding engine is a
// shared resource. Per-session relayed bandwidth decays as the depot
// saturates, and past the crossover the direct path wins again.
func ContentionSweep(seed int64, levels []int) ([]ContentionRow, error) {
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8, 16}
	}
	const (
		size        = 8 << 20
		forwardRate = 6e6 // the depot host's total forwarding capacity
		window      = 64 << 10
	)
	full := tcpsim.Config{
		RTT:      simtime.Milliseconds(80),
		Capacity: 100e6,
		SndBuf:   window,
		RcvBuf:   window,
	}
	half := full
	half.RTT = simtime.Milliseconds(40)

	// Direct baseline: each session gets the window-limited rate; the
	// endpoints, not a shared middle, are the constraint.
	eng := netsim.New(seed)
	res, err := pipesim.Run(eng, pipesim.Direct(size, "direct", full))
	if err != nil {
		return nil, err
	}
	direct := res.Bandwidth

	rows := make([]ContentionRow, 0, len(levels))
	for _, k := range levels {
		eng := netsim.New(seed)
		shared := tcpsim.NewSharedLink(forwardRate)
		chains := make([]pipesim.Chain, k)
		for i := range chains {
			in := half
			out := half
			// Every byte crosses the depot host twice; both sublinks
			// contend for its forwarding engine.
			in.Shared = shared
			out.Shared = shared
			chains[i] = pipesim.Chain{
				Size:   size,
				Hops:   []pipesim.Hop{{TCP: in}, {TCP: out}},
				Depots: []pipesim.Depot{{}},
			}
		}
		results, err := pipesim.RunMany(eng, chains)
		if err != nil {
			return nil, err
		}
		var end simtime.Time
		var per float64
		for _, r := range results {
			if r.End > end {
				end = r.End
			}
			per += r.Bandwidth
		}
		per /= float64(k)
		row := ContentionRow{
			Sessions:    k,
			PerSession:  per,
			Aggregate:   float64(k) * size / end.Sub(results[0].Start).Seconds(),
			DirectEach:  direct,
			MeanSpeedup: per / direct,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatContentionSweep renders the sweep.
func FormatContentionSweep(rows []ContentionRow) string {
	var b strings.Builder
	b.WriteString("Ablation: depot forwarding contention (8MB sessions, 6MB/s depot host)\n")
	fmt.Fprintf(&b, "%9s %16s %16s %16s %9s\n",
		"sessions", "per-sess Mbit/s", "aggregate Mbit/s", "direct Mbit/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d %16.2f %16.2f %16.2f %8.2fx\n",
			r.Sessions, mbit(r.PerSession), mbit(r.Aggregate), mbit(r.DirectEach), r.MeanSpeedup)
	}
	return b.String()
}

// CwndTraces captures congestion-window sawtooths for the direct path
// and the two sublinks of the Figure 3 transfer, the mechanism-level
// view of why splitting the control loop helps: the long path's
// recovery is slow (shallow sawtooth ramps), the short sublinks' is
// fast.
func CwndTraces(seed int64, size int64) (direct, sub1, sub2 *trace.Series, err error) {
	if size <= 0 {
		size = 32 << 20
	}
	t := BuildTwoPathChains()
	eng := netsim.New(seed)

	capture := func(c *tcpsim.Conn, s *trace.Series) {
		c.OnCwnd = func(now simtime.Time, cwnd float64) {
			s.Observe(now, int64(cwnd))
		}
	}

	direct = trace.NewSeries("direct-cwnd")
	src := tcpsim.NewByteSource(size)
	dst := tcpsim.NewCountSink()
	dc := tcpsim.New(eng, "direct", t.Direct, src, dst)
	capture(dc, direct)
	dc.Start(0)
	if _, err = eng.RunAll(); err != nil {
		return nil, nil, nil, err
	}

	// The relayed chain, hand-wired so the per-sublink cwnd hooks can
	// be attached (pipesim owns its connections).
	eng = netsim.New(seed)
	sub1 = trace.NewSeries("sublink1-cwnd")
	sub2 = trace.NewSeries("sublink2-cwnd")
	buf := newCwndBuffer()
	c1 := tcpsim.New(eng, "s1", t.Sub1, tcpsim.NewByteSource(size), buf)
	c2 := tcpsim.New(eng, "s2", t.Sub2, buf, tcpsim.NewCountSink())
	buf.producer, buf.consumer = c1, c2
	c1.OnDone = func(simtime.Time) { buf.closed = true; c2.Wake() }
	capture(c1, sub1)
	capture(c2, sub2)
	c1.Start(0)
	c2.Start(simtime.Time(1.5 * float64(t.Sub1.RTT)))
	if _, err = eng.RunAll(); err != nil {
		return nil, nil, nil, err
	}
	return direct, sub1, sub2, nil
}

// TwoPathChains carries the Figure 3 TCP parameter sets.
type TwoPathChains struct {
	Direct, Sub1, Sub2 tcpsim.Config
}

// BuildTwoPathChains extracts the UCSB→UF parameters from the testbed.
func BuildTwoPathChains() TwoPathChains {
	t, err := BuildTopology("twopath", 1)
	if err != nil {
		panic(err)
	}
	ucsb := t.MustHost("ash.ucsb.edu")
	hou := t.MustHost("depot.houston.pop")
	uf := t.MustHost("gator.ufl.edu")
	return TwoPathChains{
		Direct: t.PathConfig(ucsb, uf),
		Sub1:   t.PathConfig(ucsb, hou),
		Sub2:   t.PathConfig(hou, uf),
	}
}

// cwndBuffer is a minimal unbounded depot buffer for the hand-wired
// cwnd-trace chain.
type cwndBuffer struct {
	occ                int64
	closed             bool
	producer, consumer *tcpsim.Conn
}

func newCwndBuffer() *cwndBuffer { return &cwndBuffer{} }

func (b *cwndBuffer) Free() int64 { return 32<<20 - b.occ }
func (b *cwndBuffer) Put(n int64) {
	b.occ += n
	if b.consumer != nil {
		b.consumer.Wake()
	}
}
func (b *cwndBuffer) Available() int64 { return b.occ }
func (b *cwndBuffer) Take(n int64) {
	b.occ -= n
	if b.producer != nil {
		b.producer.Wake()
	}
}
func (b *cwndBuffer) Exhausted() bool { return b.closed && b.occ == 0 }

// FormatCwndTraces renders the three sawtooths on a common grid, cwnd
// in KB.
func FormatCwndTraces(direct, sub1, sub2 *trace.Series) string {
	var b strings.Builder
	b.WriteString("Congestion-window traces (KB): the split control loops recover faster\n")
	var end simtime.Time
	for _, s := range []*trace.Series{direct, sub1, sub2} {
		if f := s.Final().At; f > end {
			end = f
		}
	}
	fmt.Fprintf(&b, "%8s %14s %14s %14s\n", "time(s)", "direct", "sublink1", "sublink2")
	const n = 30
	for i := 0; i <= n; i++ {
		ts := simtime.Time(end.Seconds() * float64(i) / n)
		fmt.Fprintf(&b, "%8.2f %14.1f %14.1f %14.1f\n", ts.Seconds(),
			float64(direct.AckedAt(ts))/1024,
			float64(sub1.AckedAt(ts))/1024,
			float64(sub2.AckedAt(ts))/1024)
	}
	return b.String()
}
