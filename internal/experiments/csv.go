package experiments

import (
	"fmt"
	"strings"

	"github.com/netlogistics/lsl/internal/simtime"
	"github.com/netlogistics/lsl/internal/stats"
)

// CSV renders the Figure 2/3 curve as plot-ready comma-separated data.
func (c BandwidthCurve) CSV() string {
	var b strings.Builder
	b.WriteString("size_mb,direct_mbit,lsl_mbit,speedup\n")
	for i, s := range c.Sizes {
		speed := 0.0
		if c.DirectMbit[i] > 0 {
			speed = c.LSLMbit[i] / c.DirectMbit[i]
		}
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.4f\n", s>>20, c.DirectMbit[i], c.LSLMbit[i], speed)
	}
	return b.String()
}

// CSV renders the Figure 4/5 traces on a common time grid: time in
// seconds, acknowledged sequence numbers in MB for each series.
func (r SeqTraces) CSV() string {
	var b strings.Builder
	b.WriteString("time_s,sublink1_mb,sublink2_mb,direct_mb\n")
	end := r.Sub1.Final().At
	if e := r.Sub2.Final().At; e > end {
		end = e
	}
	if e := r.Direct.Final().At; e > end {
		end = e
	}
	const n = 100
	for i := 0; i <= n; i++ {
		t := end.Seconds() * float64(i) / n
		ts := simtime.Time(t)
		fmt.Fprintf(&b, "%.4f,%.4f,%.4f,%.4f\n", t,
			float64(r.Sub1.AckedAt(ts))/(1<<20),
			float64(r.Sub2.AckedAt(ts))/(1<<20),
			float64(r.Direct.AckedAt(ts))/(1<<20))
	}
	return b.String()
}

// CSV renders the Figure 9/10 per-size speedup statistics.
func (r AggregateResult) CSV() string {
	var b strings.Builder
	b.WriteString("size_mb,cases,mean,min,q1,median,q3,max,pct_over_1\n")
	for _, row := range r.Rows {
		pct := row.PctOver
		if !row.PctOK {
			pct = -1
		}
		fmt.Fprintf(&b, "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d\n",
			row.Size>>20, row.Cases, row.Mean,
			row.Box.Min, row.Box.Q1, row.Box.Median, row.Box.Q3, row.Box.Max, pct)
	}
	return b.String()
}

// CSV renders the Figure 11 box statistics.
func (r CoreResult) CSV() string {
	var b strings.Builder
	b.WriteString("size_mb,pairs,min,q1,median,q3,max\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			row.Size>>20, row.Cases,
			row.Box.Min, row.Box.Q1, row.Box.Median, row.Box.Q3, row.Box.Max)
	}
	return b.String()
}

// RowsCSV renders any per-size rows (shared helper for callers that
// have a bare []stats.SizeRow).
func RowsCSV(rows []stats.SizeRow) string {
	var b strings.Builder
	b.WriteString("size_mb,cases,mean,min,q1,median,q3,max\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			row.Size>>20, row.Cases, row.Mean,
			row.Box.Min, row.Box.Q1, row.Box.Median, row.Box.Q3, row.Box.Max)
	}
	return b.String()
}
