package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/netlogistics/lsl/internal/nws"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
)

// BuildTopology constructs one of the named evaluation testbeds:
// "twopath", "planetlab", or "abilene".
func BuildTopology(name string, seed int64) (*topo.Topology, error) {
	switch name {
	case "twopath":
		return topo.TwoPath(), nil
	case "planetlab":
		return topo.PlanetLab(topo.DefaultPlanetLab(), seed), nil
	case "abilene":
		return topo.AbileneCore(topo.DefaultAbileneCore(), seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q (want twopath, planetlab, or abilene)", name)
	}
}

// DumpMeasurements renders NWS-style bandwidth measurements of a
// testbed in the text format cmd/lsl-sched consumes:
//
//	<source-host> <dest-host> <bandwidth-bytes-per-sec>
//
// samples observations are emitted per ordered pair, so lsl-sched's
// averaging mirrors the forecast smoothing of the in-process planner.
func DumpMeasurements(topoName string, seed int64, samples int) (string, error) {
	t, err := BuildTopology(topoName, seed)
	if err != nil {
		return "", err
	}
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed + 1))
	var b strings.Builder
	fmt.Fprintf(&b, "# %s testbed, seed %d, %d samples per ordered pair\n", topoName, seed, samples)
	fmt.Fprintf(&b, "# <source-host> <dest-host> <bandwidth-bytes-per-sec>\n")
	for s := 0; s < t.N(); s++ {
		for d := 0; d < t.N(); d++ {
			if s == d {
				continue
			}
			for k := 0; k < samples; k++ {
				fmt.Fprintf(&b, "%s %s %.0f\n",
					t.Hosts[s].Name, t.Hosts[d].Name, t.MeasuredBW(s, d, rng))
			}
		}
	}
	return b.String(), nil
}

// Weather renders the current NWS forecast matrix for a testbed — the
// "performance topology" the scheduler consumes. Small testbeds print
// the host-level matrix; the 142-host mesh is site-aggregated for
// readability (and because that is what the planner actually uses).
func Weather(topoName string, seed int64) (string, error) {
	t, err := BuildTopology(topoName, seed)
	if err != nil {
		return "", err
	}
	planner, err := schedule.NewPlanner(t, schedule.DefaultEpsilon)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	if err := planner.Prime(rng, 8); err != nil {
		return "", err
	}
	mx := planner.Monitor.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "NWS forecast matrix for %s (MB/s, mean relative error %.1f%%)\n",
		topoName, 100*planner.Monitor.MeanRelativeError())
	if t.N() > 24 {
		idx := make(map[string]int, t.N())
		for i, h := range t.Hosts {
			idx[h.Name] = i
		}
		site := mx.AggregateBySite(func(host string) string { return t.SiteOf(idx[host]) })
		fmt.Fprintf(&b, "(aggregated to %d sites)\n", len(site.Hosts))
		b.WriteString(site.String())
	} else {
		b.WriteString(mx.String())
	}
	return b.String(), nil
}

// NWSEvaluation exercises the forecaster bank the way Wolski's NWS
// paper motivates dynamic predictor selection: on three synthetic
// bandwidth regimes (stationary noise, drifting level, measurement
// spikes) plus a real measured series from the two-path testbed, no
// single expert wins everywhere but the selector stays competitive
// with the best one in hindsight.
func NWSEvaluation(seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder

	regimes := []struct {
		name   string
		series []float64
	}{
		{"stationary", synthSeries(400, rng, func(i int) float64 { return 100 + rng.NormFloat64()*8 })},
		{"drifting", driftSeries(400, rng)},
		{"spiky", synthSeries(400, rng, func(i int) float64 {
			v := 100 + rng.NormFloat64()*3
			if rng.Float64() < 0.08 {
				v *= 5
			}
			return v
		})},
		{"measured (UCSB→UF)", measuredSeries(seed, 400)},
	}
	for _, r := range regimes {
		experts, selector, err := nws.Evaluate(r.series)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "=== %s series ===\n%s\n", r.name, nws.FormatEvaluation(experts, selector))
	}
	return b.String(), nil
}

func synthSeries(n int, rng *rand.Rand, gen func(int) float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = gen(i)
	}
	return out
}

func driftSeries(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	level := 100.0
	for i := range out {
		level += rng.NormFloat64() * 3
		out[i] = level + rng.NormFloat64()*2
	}
	return out
}

// measuredSeries samples the two-path testbed's UCSB→UF bandwidth with
// the slow load walk enabled, producing a realistically autocorrelated
// series.
func measuredSeries(seed int64, n int) []float64 {
	t := topo.TwoPath()
	t.EnableLoadDrift(0.08)
	// Give the endpoints node ceilings below the path's steady state so
	// the load walk, not i.i.d. measurement noise, shapes the series.
	for i := range t.Hosts {
		if t.Hosts[i].NodeBW == 0 {
			t.Hosts[i].NodeBW = 2.2e6
		}
	}
	t.MeasureNoise = 0.04
	rng := rand.New(rand.NewSource(seed + 7))
	a, bIdx := t.MustHost("ash.ucsb.edu"), t.MustHost("gator.ufl.edu")
	out := make([]float64, n)
	for i := range out {
		out[i] = t.MeasuredBW(a, bIdx, rng)
		t.AdvanceLoad(rng)
	}
	return out
}
