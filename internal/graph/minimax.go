package graph

import (
	"fmt"
	"math"
	"strings"
)

// Tree is a tree of best paths from a root to every reachable node, as
// produced by MinimaxTree or ShortestPathTree.
type Tree struct {
	G      *Graph
	Root   NodeID
	Parent []NodeID  // Parent[v] precedes v on the root→v path; None if unreachable (or root)
	Cost   []float64 // path cost from root under the tree's metric; Inf if unreachable
}

// MinimaxTree implements the paper's Appendix A algorithm: a greedy
// Dijkstra-like build of a tree of minimax paths from root to all other
// nodes, with ε edge-equivalence tree shaping.
//
// The relaxation replaces the additive step of Dijkstra with
// relaxCost = max(edgeCost, cost[current]), and a candidate improves an
// existing label only when relaxCost·(1+ε) < cost[other] — i.e. an
// alternative must be more than ε better before the tree is reshaped.
// ε=0 yields exact minimax (widest-path) trees; the paper uses ε=0.1 so
// that hosts at the same site, whose measured edges differ only by
// noise, are treated as equivalent and spurious relay hops are not
// added.
func MinimaxTree(g *Graph, root NodeID, epsilon float64) *Tree {
	return MinimaxTreeTransit(g, root, epsilon, nil)
}

// MinimaxTreeTransit generalizes MinimaxTree with per-node transit
// costs, the paper's proposed extension ("the scheduling algorithms can
// be trivially extended to include the path through the host as
// another edge whose bandwidth must be taken into account"):
// forwarding *through* node v contributes transit[v] to the path's
// minimax cost, so the relaxation through an interior node u becomes
// max(cost[u], transit[u], edge(u,v)). Endpoints pay no transit cost.
// transit[v] = +Inf forbids v from forwarding at all (a host that runs
// no depot); a nil transit slice means free transit everywhere.
func MinimaxTreeTransit(g *Graph, root NodeID, epsilon float64, transit []float64) *Tree {
	g.check(root)
	if epsilon < 0 {
		epsilon = 0
	}
	if transit != nil && len(transit) != g.N() {
		panic(fmt.Sprintf("graph: transit slice has %d entries for %d nodes", len(transit), g.N()))
	}
	n := g.N()
	t := &Tree{
		G:      g,
		Root:   root,
		Parent: make([]NodeID, n),
		Cost:   make([]float64, n),
	}
	inTree := make([]bool, n)
	for i := range t.Parent {
		t.Parent[i] = None
		t.Cost[i] = Inf
	}
	t.Cost[root] = 0
	t.Parent[root] = root

	for added := 0; added < n; added++ {
		// Select the cheapest labelled node not yet in the tree.
		next := None
		best := Inf
		for v := 0; v < n; v++ {
			if !inTree[v] && t.Cost[v] < best {
				best = t.Cost[v]
				next = NodeID(v)
			}
		}
		if next == None {
			break // remaining nodes are unreachable
		}
		inTree[next] = true
		// Relaxing beyond `next` makes it an interior (forwarding)
		// node, so its transit cost joins the minimax — unless it is
		// the root, which sends but does not forward.
		through := t.Cost[next]
		if transit != nil && next != root {
			if tr := transit[next]; tr > through {
				through = tr
			}
		}
		if math.IsInf(through, 1) {
			continue // this node may terminate paths but never extend them
		}
		// Relax edges out of the newly added node.
		for v := 0; v < n; v++ {
			if inTree[v] || NodeID(v) == next {
				continue
			}
			edge := g.Cost(next, NodeID(v))
			if math.IsInf(edge, 1) {
				continue
			}
			relax := edge
			if through > relax {
				relax = through
			}
			if relax*(1+epsilon) < t.Cost[v] {
				t.Parent[v] = next
				t.Cost[v] = relax
			}
		}
	}
	t.Parent[root] = None // canonical: the root has no parent
	return t
}

// ShortestPathTree is the classic Dijkstra additive-cost tree, used as a
// baseline against MMP.
func ShortestPathTree(g *Graph, root NodeID) *Tree {
	g.check(root)
	n := g.N()
	t := &Tree{
		G:      g,
		Root:   root,
		Parent: make([]NodeID, n),
		Cost:   make([]float64, n),
	}
	inTree := make([]bool, n)
	for i := range t.Parent {
		t.Parent[i] = None
		t.Cost[i] = Inf
	}
	t.Cost[root] = 0

	for added := 0; added < n; added++ {
		next := None
		best := Inf
		for v := 0; v < n; v++ {
			if !inTree[v] && t.Cost[v] < best {
				best = t.Cost[v]
				next = NodeID(v)
			}
		}
		if next == None {
			break
		}
		inTree[next] = true
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			edge := g.Cost(next, NodeID(v))
			if math.IsInf(edge, 1) {
				continue
			}
			if alt := t.Cost[next] + edge; alt < t.Cost[v] {
				t.Parent[v] = next
				t.Cost[v] = alt
			}
		}
	}
	return t
}

// Reachable reports whether dst has a path from the root.
func (t *Tree) Reachable(dst NodeID) bool {
	t.G.check(dst)
	return dst == t.Root || t.Parent[dst] != None
}

// PathTo walks the tree to dst and returns the node sequence
// root,...,dst. It returns nil when dst is unreachable.
func (t *Tree) PathTo(dst NodeID) []NodeID {
	t.G.check(dst)
	if dst == t.Root {
		return []NodeID{t.Root}
	}
	if t.Parent[dst] == None {
		return nil
	}
	var rev []NodeID
	for v := dst; v != None; v = t.Parent[v] {
		rev = append(rev, v)
		if len(rev) > t.G.N() {
			panic("graph: parent cycle in tree")
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Relays returns the intermediate nodes (depots) on the root→dst path,
// excluding the endpoints. An empty result means direct transfer.
func (t *Tree) Relays(dst NodeID) []NodeID {
	p := t.PathTo(dst)
	if len(p) <= 2 {
		return nil
	}
	return p[1 : len(p)-1]
}

// NextHop returns the first hop after the root on the path to dst, or
// None when dst is unreachable or is the root itself.
func (t *Tree) NextHop(dst NodeID) NodeID {
	p := t.PathTo(dst)
	if len(p) < 2 {
		return None
	}
	return p[1]
}

// MaxDepth returns the longest root→leaf path length in edges.
func (t *Tree) MaxDepth() int {
	max := 0
	for v := 0; v < t.G.N(); v++ {
		if p := t.PathTo(NodeID(v)); len(p)-1 > max {
			max = len(p) - 1
		}
	}
	return max
}

// RelayedCount returns how many reachable destinations are routed
// through at least one relay.
func (t *Tree) RelayedCount() int {
	n := 0
	for v := 0; v < t.G.N(); v++ {
		if NodeID(v) == t.Root {
			continue
		}
		if len(t.Relays(NodeID(v))) > 0 {
			n++
		}
	}
	return n
}

// String renders the tree as indented ASCII, one node per line.
func (t *Tree) String() string {
	children := make(map[NodeID][]NodeID)
	for v := 0; v < t.G.N(); v++ {
		id := NodeID(v)
		if id == t.Root || t.Parent[id] == None {
			continue
		}
		children[t.Parent[id]] = append(children[t.Parent[id]], id)
	}
	var b strings.Builder
	var walk func(v NodeID, depth int)
	walk = func(v NodeID, depth int) {
		fmt.Fprintf(&b, "%s%s (cost %.3g)\n", strings.Repeat("  ", depth), t.G.Name(v), t.Cost[v])
		for _, c := range children[v] {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}
