package graph

import (
	"fmt"
	"strings"
)

// DOT renders the tree in Graphviz dot syntax, the format the paper's
// Figures 6-8 were drawn in: nodes grouped into site clusters (derived
// from the part of each name after the first '.'), tree edges labelled
// with their minimax cost.
func (t *Tree) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	// Group nodes by site, as the paper's figures box them.
	sites := map[string][]NodeID{}
	var order []string
	for v := 0; v < t.G.N(); v++ {
		name := t.G.Name(NodeID(v))
		site := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			site = name[i+1:]
		}
		if _, ok := sites[site]; !ok {
			order = append(order, site)
		}
		sites[site] = append(sites[site], NodeID(v))
	}
	for i, site := range order {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, site)
		for _, v := range sites[site] {
			fmt.Fprintf(&b, "    %q;\n", t.G.Name(v))
		}
		b.WriteString("  }\n")
	}
	for v := 0; v < t.G.N(); v++ {
		id := NodeID(v)
		if id == t.Root || t.Parent[id] == None {
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.3g\"];\n",
			t.G.Name(t.Parent[id]), t.G.Name(id), t.Cost[id])
	}
	fmt.Fprintf(&b, "  %q [style=bold];\n", t.G.Name(t.Root))
	b.WriteString("}\n")
	return b.String()
}
