package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestTransitNilMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(8, rng)
		a := MinimaxTree(g, 0, 0.1)
		b := MinimaxTreeTransit(g, 0, 0.1, nil)
		for v := 0; v < g.N(); v++ {
			if a.Cost[v] != b.Cost[v] || a.Parent[v] != b.Parent[v] {
				t.Fatalf("nil transit diverged at %d", v)
			}
		}
	}
}

func TestTransitZeroMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := randomGraph(8, rng)
	zero := make([]float64, g.N())
	a := MinimaxTree(g, 0, 0)
	b := MinimaxTreeTransit(g, 0, 0, zero)
	for v := 0; v < g.N(); v++ {
		if a.Cost[v] != b.Cost[v] {
			t.Fatalf("zero transit diverged at %d", v)
		}
	}
}

func TestTransitBlocksForwarding(t *testing.T) {
	// a - m - b line; direct a-b expensive. m with infinite transit may
	// terminate paths but not extend them.
	g := MustNew([]string{"a", "m", "b"})
	g.SetCostSym(0, 1, 1)
	g.SetCostSym(1, 2, 1)
	g.SetCostSym(0, 2, 10)
	transit := []float64{0, Inf, 0}
	tree := MinimaxTreeTransit(g, 0, 0, transit)
	// b must be reached directly (cost 10), not via m.
	if p := tree.PathTo(2); len(p) != 2 {
		t.Fatalf("path = %v, want direct", p)
	}
	if tree.Cost[2] != 10 {
		t.Fatalf("cost = %v", tree.Cost[2])
	}
	// m itself is still reachable as an endpoint.
	if !tree.Reachable(1) || tree.Cost[1] != 1 {
		t.Fatalf("m unreachable or mispriced: %v", tree.Cost[1])
	}
}

func TestTransitJoinsMinimax(t *testing.T) {
	// Relay wins without transit cost, loses with it.
	g := MustNew([]string{"a", "m", "b"})
	g.SetCostSym(0, 1, 2)
	g.SetCostSym(1, 2, 2)
	g.SetCostSym(0, 2, 5)

	free := MinimaxTreeTransit(g, 0, 0, []float64{0, 0, 0})
	if p := free.PathTo(2); len(p) != 3 {
		t.Fatalf("free transit path = %v, want relay", p)
	}
	if free.Cost[2] != 2 {
		t.Fatalf("free transit cost = %v", free.Cost[2])
	}

	// Transit 6 through m makes the relayed path cost 6 > direct 5.
	slow := MinimaxTreeTransit(g, 0, 0, []float64{0, 6, 0})
	if p := slow.PathTo(2); len(p) != 2 {
		t.Fatalf("slow transit path = %v, want direct", p)
	}
	if slow.Cost[2] != 5 {
		t.Fatalf("slow transit cost = %v", slow.Cost[2])
	}

	// Transit 3: relay still wins, but the cost reflects the transit.
	mid := MinimaxTreeTransit(g, 0, 0, []float64{0, 3, 0})
	if p := mid.PathTo(2); len(p) != 3 {
		t.Fatalf("mid transit path = %v, want relay", p)
	}
	if mid.Cost[2] != 3 {
		t.Fatalf("mid transit cost = %v, want 3", mid.Cost[2])
	}
}

func TestTransitRootPaysNothing(t *testing.T) {
	// The root sends but does not forward: its own transit cost must
	// not contaminate paths.
	g := MustNew([]string{"a", "b"})
	g.SetCostSym(0, 1, 1)
	tree := MinimaxTreeTransit(g, 0, 0, []float64{Inf, 0})
	if !tree.Reachable(1) || tree.Cost[1] != 1 {
		t.Fatalf("root transit leaked: cost=%v", tree.Cost[1])
	}
}

func TestTransitDestinationPaysNothing(t *testing.T) {
	// Terminating at a node never charges its transit cost.
	g := MustNew([]string{"a", "b"})
	g.SetCostSym(0, 1, 1)
	tree := MinimaxTreeTransit(g, 0, 0, []float64{0, 1000})
	if tree.Cost[1] != 1 {
		t.Fatalf("endpoint charged transit: %v", tree.Cost[1])
	}
}

func TestTransitLengthMismatchPanics(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	MinimaxTreeTransit(g, 0, 0, []float64{0})
}

func TestTransitCostNeverBelowPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(10, rng)
		transit := make([]float64, g.N())
		for i := range transit {
			transit[i] = rng.Float64() * 5
		}
		plain := MinimaxTree(g, 0, 0)
		withT := MinimaxTreeTransit(g, 0, 0, transit)
		for v := 0; v < g.N(); v++ {
			if withT.Cost[v] < plain.Cost[v]-1e-9 {
				t.Fatalf("transit lowered cost at %d: %v < %v", v, withT.Cost[v], plain.Cost[v])
			}
			if !math.IsInf(plain.Cost[v], 1) && math.IsInf(withT.Cost[v], 1) {
				// Finite transit cannot disconnect a connected graph
				// reachable via direct edges.
				if !math.IsInf(g.Cost(0, NodeID(v)), 1) {
					t.Fatalf("finite transit disconnected %d", v)
				}
			}
		}
	}
}
