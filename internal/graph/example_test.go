package graph_test

import (
	"fmt"

	"github.com/netlogistics/lsl/internal/graph"
)

// ExampleMinimaxTree reproduces the paper's Figures 7-8 situation in
// miniature: exact minimax (ε=0) relays through a marginally better
// host; ε=0.1 treats the edges as equivalent and keeps the direct one.
func ExampleMinimaxTree() {
	g := graph.MustNew([]string{"ash", "opus", "bell"})
	ash, _ := g.Lookup("ash")
	opus, _ := g.Lookup("opus")
	bell, _ := g.Lookup("bell")
	g.SetCostSym(ash, opus, 5.1)
	g.SetCostSym(opus, bell, 0.3)
	g.SetCostSym(ash, bell, 5.5)

	for _, eps := range []float64{0, 0.1} {
		tree := graph.MinimaxTree(g, ash, eps)
		path := tree.PathTo(bell)
		names := make([]string, len(path))
		for i, v := range path {
			names[i] = g.Name(v)
		}
		fmt.Printf("eps=%.1f: %v (cost %.1f)\n", eps, names, tree.Cost[bell])
	}
	// Output:
	// eps=0.0: [ash opus bell] (cost 5.1)
	// eps=0.1: [ash bell] (cost 5.5)
}

// ExampleTree_Routes shows the reduction of a tree to the
// destination/next-hop table a depot consumes.
func ExampleTree_Routes() {
	g := graph.MustNew([]string{"src", "depot", "dst"})
	g.SetCostSym(0, 1, 1)
	g.SetCostSym(1, 2, 1)
	g.SetCostSym(0, 2, 10)
	tree := graph.MinimaxTree(g, 0, 0)
	routes := tree.Routes()
	fmt.Printf("to dst via %s\n", g.Name(routes[2]))
	// Output:
	// to dst via depot
}

// ExampleMinimaxTreeTransit demonstrates the host-bandwidth extension:
// charging the relay's forwarding rate flips the decision.
func ExampleMinimaxTreeTransit() {
	g := graph.MustNew([]string{"a", "m", "b"})
	g.SetCostSym(0, 1, 2)
	g.SetCostSym(1, 2, 2)
	g.SetCostSym(0, 2, 5)

	free := graph.MinimaxTreeTransit(g, 0, 0, []float64{0, 0, 0})
	slow := graph.MinimaxTreeTransit(g, 0, 0, []float64{0, 6, 0})
	fmt.Println("free transit relays:", len(free.Relays(2)) > 0)
	fmt.Println("slow transit relays:", len(slow.Relays(2)) > 0)
	// Output:
	// free transit relays: true
	// slow transit relays: false
}
