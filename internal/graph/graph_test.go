package graph

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a", ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	g, err := New([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad input")
		}
	}()
	MustNew([]string{"x", "x"})
}

func TestCostDefaults(t *testing.T) {
	g := MustNew([]string{"a", "b", "c"})
	a, _ := g.Lookup("a")
	b, _ := g.Lookup("b")
	if !math.IsInf(g.Cost(a, b), 1) {
		t.Fatal("missing edge should be Inf")
	}
	if g.Cost(a, a) != 0 {
		t.Fatal("diagonal should be 0")
	}
	if g.HasEdge(a, b) {
		t.Fatal("HasEdge on missing edge")
	}
	if g.HasEdge(a, a) {
		t.Fatal("HasEdge on diagonal")
	}
}

func TestSetCost(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	a, _ := g.Lookup("a")
	b, _ := g.Lookup("b")
	g.SetCost(a, b, 2.5)
	if g.Cost(a, b) != 2.5 {
		t.Fatalf("cost = %v", g.Cost(a, b))
	}
	if !math.IsInf(g.Cost(b, a), 1) {
		t.Fatal("directed set leaked to reverse edge")
	}
	g.SetCostSym(a, b, 3)
	if g.Cost(a, b) != 3 || g.Cost(b, a) != 3 {
		t.Fatal("SetCostSym failed")
	}
	// Self edges are ignored.
	g.SetCost(a, a, 9)
	if g.Cost(a, a) != 0 {
		t.Fatal("self edge modified diagonal")
	}
}

func TestSetCostPanicsOnInvalid(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost should panic")
		}
	}()
	g.SetCost(0, 1, -1)
}

func TestLookupAndName(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	if id, ok := g.Lookup("b"); !ok || g.Name(id) != "b" {
		t.Fatalf("lookup roundtrip failed: %v %v", id, ok)
	}
	if _, ok := g.Lookup("zzz"); ok {
		t.Fatal("lookup of missing name succeeded")
	}
	if g.Name(NodeID(99)) == "" {
		t.Fatal("out-of-range Name should still render something")
	}
}

func TestClone(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	g.SetCostSym(0, 1, 5)
	c := g.Clone()
	c.SetCostSym(0, 1, 7)
	if g.Cost(0, 1) != 5 {
		t.Fatal("clone shares storage with original")
	}
	if c.Cost(0, 1) != 7 {
		t.Fatal("clone not writable")
	}
}

func TestPathCost(t *testing.T) {
	g := MustNew([]string{"a", "b", "c"})
	g.SetCost(0, 1, 2)
	g.SetCost(1, 2, 5)
	got, err := g.PathCost([]NodeID{0, 1, 2})
	if err != nil || got != 5 {
		t.Fatalf("minimax path cost = %v, %v", got, err)
	}
	sum, err := g.PathSum([]NodeID{0, 1, 2})
	if err != nil || sum != 7 {
		t.Fatalf("additive path cost = %v, %v", sum, err)
	}
	if _, err := g.PathCost(nil); err == nil {
		t.Fatal("empty path accepted")
	}
	if c, _ := g.PathCost([]NodeID{0, 2}); !math.IsInf(c, 1) {
		t.Fatal("path over missing edge should cost Inf")
	}
	if c, _ := g.PathCost([]NodeID{1}); c != 0 {
		t.Fatalf("single-node path cost = %v", c)
	}
}
