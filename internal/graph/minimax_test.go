package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a random complete symmetric graph.
func randomGraph(n int, rng *rand.Rand) *Graph {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	g := MustNew(names)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetCostSym(NodeID(i), NodeID(j), 0.1+rng.Float64()*10)
		}
	}
	return g
}

// bruteMinimax computes the true minimax cost from src to dst by
// threshold search: the smallest edge cost c such that dst is reachable
// from src using only edges <= c.
func bruteMinimax(g *Graph, src, dst NodeID) float64 {
	n := g.N()
	var costs []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !math.IsInf(g.Cost(NodeID(i), NodeID(j)), 1) {
				costs = append(costs, g.Cost(NodeID(i), NodeID(j)))
			}
		}
	}
	best := math.Inf(1)
	for _, c := range costs {
		if c >= best {
			continue
		}
		if reachableUnder(g, src, dst, c) {
			best = c
		}
	}
	return best
}

func reachableUnder(g *Graph, src, dst NodeID, limit float64) bool {
	n := g.N()
	seen := make([]bool, n)
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == dst {
			return true
		}
		for w := 0; w < n; w++ {
			if seen[w] {
				continue
			}
			c := g.Cost(v, NodeID(w))
			if !math.IsInf(c, 1) && c <= limit {
				seen[w] = true
				stack = append(stack, NodeID(w))
			}
		}
	}
	return false
}

func TestMinimaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		g := randomGraph(n, rng)
		root := NodeID(rng.Intn(n))
		tree := MinimaxTree(g, root, 0)
		for v := 0; v < n; v++ {
			if NodeID(v) == root {
				continue
			}
			want := bruteMinimax(g, root, NodeID(v))
			if math.Abs(tree.Cost[v]-want) > 1e-9 {
				t.Fatalf("trial %d: cost[%d] = %v, brute force %v", trial, v, tree.Cost[v], want)
			}
		}
	}
}

func TestTreeCostConsistentWithParents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(10, rng)
		for _, eps := range []float64{0, 0.1, 0.3} {
			tree := MinimaxTree(g, 0, eps)
			for v := 0; v < g.N(); v++ {
				path := tree.PathTo(NodeID(v))
				if path == nil {
					continue
				}
				got, err := g.PathCost(path)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-tree.Cost[v]) > 1e-9 {
					t.Fatalf("eps=%v: walked cost %v != label %v", eps, got, tree.Cost[v])
				}
			}
		}
	}
}

func TestEpsilonNeverImprovesCost(t *testing.T) {
	// ε makes trees simpler, never cheaper: label costs with ε>0 are
	// >= the exact minimax labels, and within (1+ε)^depth of them.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(12, rng)
		exact := MinimaxTree(g, 0, 0)
		damped := MinimaxTree(g, 0, 0.1)
		for v := 0; v < g.N(); v++ {
			if damped.Cost[v] < exact.Cost[v]-1e-9 {
				t.Fatalf("ε tree found cheaper path: %v < %v", damped.Cost[v], exact.Cost[v])
			}
		}
	}
}

func TestEpsilonReducesRelays(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var relExact, relDamped int
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(12, rng)
		relExact += MinimaxTree(g, 0, 0).RelayedCount()
		relDamped += MinimaxTree(g, 0, 0.2).RelayedCount()
	}
	if relDamped > relExact {
		t.Fatalf("ε=0.2 used more relays (%d) than ε=0 (%d)", relDamped, relExact)
	}
}

func TestPaperEpsilonExample(t *testing.T) {
	// The Figure 7/8 situation: direct edge 5.5, relay path with max
	// edge 5.1. Exact minimax relays; ε=0.1 keeps the direct edge
	// because 5.1·1.1 > 5.5.
	g := MustNew([]string{"ash", "opus", "bell"})
	ash, _ := g.Lookup("ash")
	opus, _ := g.Lookup("opus")
	bell, _ := g.Lookup("bell")
	g.SetCostSym(ash, opus, 5.1)
	g.SetCostSym(opus, bell, 0.3)
	g.SetCostSym(ash, bell, 5.5)

	exact := MinimaxTree(g, ash, 0)
	if got := exact.PathTo(bell); len(got) != 3 {
		t.Fatalf("exact path = %v, want relay via opus", got)
	}
	damped := MinimaxTree(g, ash, 0.1)
	if got := damped.PathTo(bell); len(got) != 2 {
		t.Fatalf("ε path = %v, want direct", got)
	}
}

func TestUnreachableNodes(t *testing.T) {
	g := MustNew([]string{"a", "b", "c"})
	g.SetCostSym(0, 1, 1)
	// c is isolated.
	tree := MinimaxTree(g, 0, 0)
	if tree.Reachable(2) {
		t.Fatal("isolated node reported reachable")
	}
	if tree.PathTo(2) != nil {
		t.Fatal("path to unreachable node")
	}
	if tree.NextHop(2) != None {
		t.Fatal("next hop to unreachable node")
	}
	if !tree.Reachable(1) {
		t.Fatal("neighbor should be reachable")
	}
}

func TestPathToRoot(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	g.SetCostSym(0, 1, 1)
	tree := MinimaxTree(g, 0, 0)
	p := tree.PathTo(0)
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("path to root = %v", p)
	}
	if tree.NextHop(0) != None {
		t.Fatal("NextHop(root) should be None")
	}
}

func TestRelays(t *testing.T) {
	g := MustNew([]string{"a", "m", "b"})
	g.SetCostSym(0, 1, 1)
	g.SetCostSym(1, 2, 1)
	g.SetCostSym(0, 2, 10)
	tree := MinimaxTree(g, 0, 0)
	relays := tree.Relays(2)
	if len(relays) != 1 || relays[0] != 1 {
		t.Fatalf("relays = %v", relays)
	}
	if tree.NextHop(2) != 1 {
		t.Fatalf("next hop = %v", tree.NextHop(2))
	}
}

func TestShortestPathTree(t *testing.T) {
	// Triangle where minimax and shortest path disagree: a-b direct
	// cost 5; a-m-b costs 3+3 (sum 6 > 5 but max 3 < 5).
	g := MustNew([]string{"a", "m", "b"})
	g.SetCostSym(0, 1, 3)
	g.SetCostSym(1, 2, 3)
	g.SetCostSym(0, 2, 5)
	sp := ShortestPathTree(g, 0)
	if got := sp.PathTo(2); len(got) != 2 {
		t.Fatalf("shortest path = %v, want direct", got)
	}
	if sp.Cost[2] != 5 {
		t.Fatalf("sp cost = %v", sp.Cost[2])
	}
	mm := MinimaxTree(g, 0, 0)
	if got := mm.PathTo(2); len(got) != 3 {
		t.Fatalf("minimax path = %v, want relay", got)
	}
}

func TestShortestPathMatchesClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(8, rng)
		sp := ShortestPathTree(g, 0)
		for v := 0; v < g.N(); v++ {
			path := sp.PathTo(NodeID(v))
			if path == nil {
				continue
			}
			sum, err := g.PathSum(path)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sum-sp.Cost[v]) > 1e-9 {
				t.Fatalf("walked sum %v != label %v", sum, sp.Cost[v])
			}
			// No single edge can beat the tree path.
			if direct := g.Cost(0, NodeID(v)); direct < sp.Cost[v]-1e-9 {
				t.Fatalf("direct edge %v cheaper than sp label %v", direct, sp.Cost[v])
			}
		}
	}
}

func TestMaxDepth(t *testing.T) {
	g := MustNew([]string{"a", "b", "c"})
	g.SetCostSym(0, 1, 1)
	g.SetCostSym(1, 2, 1)
	g.SetCostSym(0, 2, 100)
	tree := MinimaxTree(g, 0, 0)
	if d := tree.MaxDepth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestTreeString(t *testing.T) {
	g := MustNew([]string{"a", "b"})
	g.SetCostSym(0, 1, 1)
	if s := MinimaxTree(g, 0, 0).String(); s == "" {
		t.Fatal("empty tree rendering")
	}
}
