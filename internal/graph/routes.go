package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// RouteTable is a depot's forwarding state: destination → next hop.
// It is the reduction of an MMP tree described in Section 4.2 of the
// paper ("these destination/next hop tuples form a route table that is
// consumed by the logistical depot").
type RouteTable map[NodeID]NodeID

// Routes reduces the tree to the route table of its root node: for each
// reachable destination, the first hop along the chosen path. The root
// itself and unreachable nodes have no entry.
func (t *Tree) Routes() RouteTable {
	rt := make(RouteTable)
	for v := 0; v < t.G.N(); v++ {
		id := NodeID(v)
		if id == t.Root {
			continue
		}
		if hop := t.NextHop(id); hop != None {
			rt[id] = hop
		}
	}
	return rt
}

// RoutePlan is a complete hop-by-hop routing configuration: one route
// table per node, each derived from that node's own MMP tree.
type RoutePlan struct {
	G       *Graph
	Epsilon float64
	Tables  []RouteTable // indexed by NodeID
	Trees   []*Tree      // the trees the tables were reduced from
}

// BuildRoutePlan computes MMP trees from every node and reduces each to
// a route table.
func BuildRoutePlan(g *Graph, epsilon float64) *RoutePlan {
	n := g.N()
	p := &RoutePlan{
		G:       g,
		Epsilon: epsilon,
		Tables:  make([]RouteTable, n),
		Trees:   make([]*Tree, n),
	}
	for v := 0; v < n; v++ {
		t := MinimaxTree(g, NodeID(v), epsilon)
		p.Trees[v] = t
		p.Tables[v] = t.Routes()
	}
	return p
}

// ErrRoutingLoop indicates hop-by-hop resolution revisited a node.
var ErrRoutingLoop = errors.New("graph: hop-by-hop routing loop")

// ErrNoRoute indicates a node had no table entry for the destination.
var ErrNoRoute = errors.New("graph: no route to destination")

// HopByHopPath resolves the path src→dst by following each successive
// node's own route table, the way deployed depots forward. Because
// every node routes by its own tree, the resulting path can differ from
// the source tree's path; the paper relies on the ε-damped trees making
// the tables consistent in practice.
func (p *RoutePlan) HopByHopPath(src, dst NodeID) ([]NodeID, error) {
	p.G.check(src)
	p.G.check(dst)
	path := []NodeID{src}
	seen := map[NodeID]bool{src: true}
	cur := src
	for cur != dst {
		hop, ok := p.Tables[cur][dst]
		if !ok {
			return nil, fmt.Errorf("%w: %s has no entry for %s",
				ErrNoRoute, p.G.Name(cur), p.G.Name(dst))
		}
		if seen[hop] {
			return nil, fmt.Errorf("%w: revisited %s resolving %s→%s",
				ErrRoutingLoop, p.G.Name(hop), p.G.Name(src), p.G.Name(dst))
		}
		seen[hop] = true
		path = append(path, hop)
		cur = hop
	}
	return path, nil
}

// SourcePath returns the loose-source-route path chosen by src's own
// tree, or nil when dst is unreachable.
func (p *RoutePlan) SourcePath(src, dst NodeID) []NodeID {
	p.G.check(src)
	p.G.check(dst)
	return p.Trees[src].PathTo(dst)
}

// RelayedFraction reports the fraction of ordered reachable (src,dst)
// pairs whose chosen path uses at least one relay — the statistic the
// paper reports as "the scheduler identified better routes via depots
// for 26% of the total number of paths in the system".
func (p *RoutePlan) RelayedFraction() float64 {
	var relayed, total int
	for s := 0; s < p.G.N(); s++ {
		tree := p.Trees[s]
		for d := 0; d < p.G.N(); d++ {
			if s == d || !tree.Reachable(NodeID(d)) {
				continue
			}
			total++
			if len(tree.Relays(NodeID(d))) > 0 {
				relayed++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(relayed) / float64(total)
}

// FormatTable renders one node's route table as sorted text.
func (p *RoutePlan) FormatTable(node NodeID) string {
	p.G.check(node)
	rt := p.Tables[node]
	dests := make([]NodeID, 0, len(rt))
	for d := range rt {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool {
		return p.G.Name(dests[i]) < p.G.Name(dests[j])
	})
	var b strings.Builder
	fmt.Fprintf(&b, "route table for %s:\n", p.G.Name(node))
	for _, d := range dests {
		fmt.Fprintf(&b, "  %-24s via %s\n", p.G.Name(d), p.G.Name(rt[d]))
	}
	return b.String()
}
