package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func lineGraph() *Graph {
	// a - m1 - m2 - b with an expensive direct edge.
	g := MustNew([]string{"a", "m1", "m2", "b"})
	g.SetCostSym(0, 1, 1)
	g.SetCostSym(1, 2, 1)
	g.SetCostSym(2, 3, 1)
	g.SetCostSym(0, 3, 10)
	g.SetCostSym(0, 2, 10)
	g.SetCostSym(1, 3, 10)
	return g
}

func TestRoutesReduction(t *testing.T) {
	g := lineGraph()
	tree := MinimaxTree(g, 0, 0)
	rt := tree.Routes()
	if rt[3] != 1 {
		t.Fatalf("route to b via %v, want m1", rt[3])
	}
	if rt[1] != 1 {
		t.Fatalf("route to m1 via %v, want m1 itself", rt[1])
	}
	if _, ok := rt[0]; ok {
		t.Fatal("root should have no route entry for itself")
	}
}

func TestBuildRoutePlanAndHopByHop(t *testing.T) {
	g := lineGraph()
	plan := BuildRoutePlan(g, 0)
	path, err := plan.HopByHopPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestHopByHopMatchesSourcePathOnConsistentGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(8, rng)
		plan := BuildRoutePlan(g, 0.1)
		for s := 0; s < g.N(); s++ {
			for d := 0; d < g.N(); d++ {
				if s == d {
					continue
				}
				hbh, err := plan.HopByHopPath(NodeID(s), NodeID(d))
				if err != nil {
					// Loops are possible in principle with per-node
					// trees; they must be detected, not spun on.
					if errors.Is(err, ErrRoutingLoop) || errors.Is(err, ErrNoRoute) {
						continue
					}
					t.Fatal(err)
				}
				if hbh[0] != NodeID(s) || hbh[len(hbh)-1] != NodeID(d) {
					t.Fatalf("endpoints wrong: %v", hbh)
				}
				if len(hbh) > g.N() {
					t.Fatalf("path too long: %v", hbh)
				}
			}
		}
	}
}

func TestHopByHopNoRoute(t *testing.T) {
	g := MustNew([]string{"a", "b", "c"})
	g.SetCostSym(0, 1, 1)
	plan := BuildRoutePlan(g, 0)
	if _, err := plan.HopByHopPath(0, 2); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestSourcePath(t *testing.T) {
	g := lineGraph()
	plan := BuildRoutePlan(g, 0)
	p := plan.SourcePath(0, 3)
	if len(p) != 4 {
		t.Fatalf("source path = %v", p)
	}
	if plan.SourcePath(0, 0)[0] != 0 {
		t.Fatal("source path to self should be the root")
	}
}

func TestRelayedFraction(t *testing.T) {
	g := lineGraph()
	plan := BuildRoutePlan(g, 0)
	frac := plan.RelayedFraction()
	if frac <= 0 || frac > 1 {
		t.Fatalf("relayed fraction = %v", frac)
	}
	// Fully connected cheap graph: no relays at all.
	g2 := MustNew([]string{"a", "b", "c"})
	g2.SetCostSym(0, 1, 1)
	g2.SetCostSym(1, 2, 1)
	g2.SetCostSym(0, 2, 1)
	if f := BuildRoutePlan(g2, 0).RelayedFraction(); f != 0 {
		t.Fatalf("uniform graph relayed fraction = %v, want 0", f)
	}
}

func TestFormatTable(t *testing.T) {
	g := lineGraph()
	plan := BuildRoutePlan(g, 0)
	out := plan.FormatTable(0)
	if !strings.Contains(out, "route table for a") {
		t.Fatalf("unexpected rendering:\n%s", out)
	}
	if !strings.Contains(out, "via") {
		t.Fatalf("no entries rendered:\n%s", out)
	}
}

func TestTreeDOT(t *testing.T) {
	g := MustNew([]string{"ash.ucsb.edu", "oak.ucsb.edu", "bell.uiuc.edu"})
	g.SetCostSym(0, 1, 0.3)
	g.SetCostSym(0, 2, 5.5)
	g.SetCostSym(1, 2, 5.4)
	tree := MinimaxTree(g, 0, 0.1)
	dot := tree.DOT("fig7")
	for _, want := range []string{
		"digraph \"fig7\"",
		"cluster_0",
		"label=\"ucsb.edu\"",
		"label=\"uiuc.edu\"",
		"\"ash.ucsb.edu\" -> ",
		"style=bold",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Exactly one tree edge per reachable non-root node.
	edges := strings.Count(dot, "->")
	if edges != g.N()-1 {
		t.Fatalf("edges = %d, want %d", edges, g.N()-1)
	}
}
