// Package graph implements the paper's scheduling graph machinery: a
// dense directed cost graph over Grid hosts, the Minimax-Path (MMP)
// tree-building algorithm with ε edge-equivalence from Appendix A, a
// Dijkstra shortest-path baseline, tree walking, and the reduction of
// trees to depot route tables.
//
// Edge costs are transfer-time weights (1/bandwidth); the cost of a path
// is the maximum edge cost along it, so the optimal path is the one
// whose worst sublink is least bad — exactly the bottleneck behaviour of
// a pipelined chain of TCP connections through depots.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeID indexes a node within a Graph.
type NodeID int

// None is the nil NodeID, used for absent parents and missing routes.
const None NodeID = -1

// Inf is the edge cost of a missing edge.
var Inf = math.Inf(1)

// Graph is a dense directed graph with float64 edge costs. Construct
// with New; the zero value is unusable.
type Graph struct {
	names []string
	index map[string]NodeID
	cost  []float64 // row-major n×n; Inf = absent, diagonal 0
}

// New returns a graph over the given node names with no edges. Names
// must be unique and non-empty.
func New(names []string) (*Graph, error) {
	n := len(names)
	g := &Graph{
		names: append([]string(nil), names...),
		index: make(map[string]NodeID, n),
		cost:  make([]float64, n*n),
	}
	for i, name := range names {
		if name == "" {
			return nil, errors.New("graph: empty node name")
		}
		if _, dup := g.index[name]; dup {
			return nil, fmt.Errorf("graph: duplicate node name %q", name)
		}
		g.index[name] = NodeID(i)
	}
	for i := range g.cost {
		g.cost[i] = Inf
	}
	for i := 0; i < n; i++ {
		g.cost[i*n+i] = 0
	}
	return g, nil
}

// MustNew is New panicking on error, for tests and literals.
func MustNew(names []string) *Graph {
	g, err := New(names)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return len(g.names) }

// Name returns the display name of id.
func (g *Graph) Name(id NodeID) string {
	if id < 0 || int(id) >= len(g.names) {
		return fmt.Sprintf("node#%d", int(id))
	}
	return g.names[id]
}

// Lookup resolves a node name to its id.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.index[name]
	return id, ok
}

func (g *Graph) check(id NodeID) {
	if id < 0 || int(id) >= len(g.names) {
		panic(fmt.Sprintf("graph: node id %d out of range [0,%d)", int(id), len(g.names)))
	}
}

// SetCost sets the directed edge cost i→j. Costs must be non-negative;
// use Inf to remove an edge.
func (g *Graph) SetCost(i, j NodeID, c float64) {
	g.check(i)
	g.check(j)
	if c < 0 || math.IsNaN(c) {
		panic(fmt.Sprintf("graph: invalid edge cost %v", c))
	}
	if i == j {
		return
	}
	g.cost[int(i)*g.N()+int(j)] = c
}

// SetCostSym sets both directions of an edge.
func (g *Graph) SetCostSym(i, j NodeID, c float64) {
	g.SetCost(i, j, c)
	g.SetCost(j, i, c)
}

// Cost returns the directed edge cost i→j (Inf when absent, 0 on the
// diagonal).
func (g *Graph) Cost(i, j NodeID) float64 {
	g.check(i)
	g.check(j)
	return g.cost[int(i)*g.N()+int(j)]
}

// HasEdge reports whether a finite edge i→j exists.
func (g *Graph) HasEdge(i, j NodeID) bool { return i != j && !math.IsInf(g.Cost(i, j), 1) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		index: make(map[string]NodeID, len(g.index)),
		cost:  append([]float64(nil), g.cost...),
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	return c
}

// PathCost evaluates a path (a node sequence) under the minimax metric:
// the maximum edge cost along it. It returns Inf for paths using absent
// edges and an error for malformed paths.
func (g *Graph) PathCost(path []NodeID) (float64, error) {
	if len(path) == 0 {
		return Inf, errors.New("graph: empty path")
	}
	var max float64
	for i := 0; i+1 < len(path); i++ {
		c := g.Cost(path[i], path[i+1])
		if c > max {
			max = c
		}
	}
	return max, nil
}

// PathSum evaluates a path under the additive shortest-path metric.
func (g *Graph) PathSum(path []NodeID) (float64, error) {
	if len(path) == 0 {
		return Inf, errors.New("graph: empty path")
	}
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		sum += g.Cost(path[i], path[i+1])
	}
	return sum, nil
}
