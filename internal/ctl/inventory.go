package ctl

import (
	"errors"
	"sort"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/wire"
)

// InventoryFunc lists the content digests the named host's depot cache
// holds complete. Tests inject deterministic inventories; production
// uses the wire cache-probe exchange.
type InventoryFunc func(host string) ([]wire.ContentDigest, error)

// Inventory metric names published to Config.Metrics.
const (
	// MetricInventoryDigests gauges how many distinct content digests the
	// mesh-wide inventory currently knows a holder for.
	MetricInventoryDigests = "ctl_inventory_digests"
	// MetricInventoryErrors counts failed inventory polls. Refusals from
	// cacheless depots are not errors — they simply contribute nothing.
	MetricInventoryErrors = "ctl_inventory_errors_total"
)

// refreshInventory polls every registered member for its cache
// inventory and rebuilds the digest→holders map. Called from Round with
// c.mu held. Inventory is strictly best-effort: a member that refuses
// (no cache) or fails to answer drops out of this round's map — stale
// holder claims are worse than missing ones, since planners bend routes
// toward them.
func (c *Controller) refreshInventory(rep *RoundReport) {
	inv := c.cfg.Inventory
	if inv == nil {
		if c.cfg.Dial == nil {
			return
		}
		inv = c.wireInventory
	}
	next := make(map[wire.ContentDigest][]string)
	for _, m := range c.members {
		digests, err := inv(m.host)
		if err != nil {
			if !errors.Is(err, lsl.ErrRefused) {
				rep.InventoryErrors++
				c.met.inventoryErrors.Inc()
				c.logf("ctl: inventory %s: %v", m.host, err)
			}
			continue
		}
		rep.Inventoried++
		for _, d := range digests {
			next[d] = append(next[d], m.host)
		}
	}
	for _, hosts := range next {
		sort.Strings(hosts)
	}
	c.holders = next
	c.met.inventoryDigests.Set(int64(len(next)))
}

// Holders returns the hosts whose depot caches held the digest complete
// as of the last control round, sorted by name. An empty slice means no
// known holder. The slice is the caller's to keep.
func (c *Controller) Holders(digest wire.ContentDigest) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.holders[digest]...)
}

// InventorySize reports how many distinct digests the mesh-wide
// inventory knows a holder for.
func (c *Controller) InventorySize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.holders)
}

// wireInventory polls one member's cache inventory over the wire.
// Callers hold c.mu.
func (c *Controller) wireInventory(host string) ([]wire.ContentDigest, error) {
	for _, m := range c.members {
		if m.host == host {
			return lsl.CacheInventory(c.cfg.Dial, c.cfg.Self, m.addr)
		}
	}
	return nil, lsl.ErrRefused
}
