// Package ctl is the control plane of the logistical session layer: a
// controller that probes the link mesh between registered depots, feeds
// the measurements into the NWS forecasters behind a schedule.Planner,
// and pushes versioned route tables to each depot whenever the
// ε-damped minimax plan actually changes.
//
// The split mirrors the SDN-style architecture the paper implies:
// measurement and decision live here, while depots keep a simple
// lookup-and-forward data path (internal/depot's table-driven mode).
// Table distribution is epoch-stamped and diff-suppressed — the same
// ε-hysteresis that keeps MMP trees from flapping keeps identical
// tables from being re-pushed, so a steady network generates probe
// traffic but no control churn. Depots keep their last table when the
// controller dies (stale routing beats no routing); a periodic full
// refresh re-seeds depots that restarted and missed pushes.
package ctl

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/wire"
)

// DefaultInterval is the probe-and-replan cadence. It matches the
// order of the NWS sensor cadence the paper assumes rather than a
// chatty per-second poll: forecasts, not instantaneous samples, drive
// the plan.
const DefaultInterval = 5 * time.Minute

// DefaultProbeBytes sizes the generate-probe used to measure one link
// when no custom ProbeFunc is injected: large enough to climb out of
// TCP slow start on fast paths, small enough to finish quickly on
// degraded ones.
const DefaultProbeBytes = 256 << 10

// DefaultPushTimeout bounds one table push (dial, write, ack).
const DefaultPushTimeout = 10 * time.Second

// DefaultRefreshEvery is how many rounds may pass before an unchanged
// table is re-pushed anyway, re-seeding depots that restarted (and so
// silently lost their table) without defeating diff suppression.
const DefaultRefreshEvery = 12

// ProbeFunc measures the current bandwidth from src to dst (topology
// host names) in the planner's bandwidth units. Tests inject
// deterministic topology readings; production uses the wire probe.
type ProbeFunc func(src, dst string) (float64, error)

// Config parameterizes a Controller.
type Config struct {
	// Planner is the scheduling system measurements feed and tables come
	// from. Required. The controller assumes sole ownership: nothing
	// else may call Observe/Replan concurrently.
	Planner *schedule.Planner
	// Self is the controller's own endpoint, stamped as the source of
	// control sessions.
	Self wire.Endpoint
	// Dial opens transport connections for probes and pushes. Required
	// unless a custom Probe is set and no member has Push enabled.
	Dial lsl.Dialer
	// Interval is the Run cadence (0 selects DefaultInterval).
	Interval time.Duration
	// ProbeBytes sizes the default wire probe (0 selects
	// DefaultProbeBytes).
	ProbeBytes uint64
	// Probe overrides the wire probe, e.g. with deterministic topology
	// readings in tests.
	Probe ProbeFunc
	// Inventory overrides the wire cache-inventory poll, e.g. with
	// deterministic holder sets in tests. With neither an override nor a
	// dialer, inventory aggregation is disabled.
	Inventory InventoryFunc
	// PushTimeout bounds one table push (0 selects DefaultPushTimeout).
	PushTimeout time.Duration
	// RefreshEvery forces a full re-push after this many rounds even
	// without route changes (0 selects DefaultRefreshEvery; negative
	// disables refresh).
	RefreshEvery int
	// Metrics, when non-nil, receives the controller's counters and the
	// epoch gauge.
	Metrics *obs.Registry
	// Trace, when non-nil, receives route-change events.
	Trace obs.Sink
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Metric names published to Config.Metrics.
const (
	MetricEpoch        = "ctl_epoch"
	MetricDepots       = "ctl_depots"
	MetricRounds       = "ctl_rounds_total"
	MetricProbes       = "ctl_probes_total"
	MetricProbeErrors  = "ctl_probe_errors_total"
	MetricReplans      = "ctl_replans_total"
	MetricRouteChanges = "ctl_route_changes_total"
	MetricPushes       = "ctl_pushes_total"
	MetricPushErrors   = "ctl_push_errors_total"
)

type metrics struct {
	epoch            *obs.Gauge
	depots           *obs.Gauge
	rounds           *obs.Counter
	probes           *obs.Counter
	probeErrors      *obs.Counter
	replans          *obs.Counter
	routeChanges     *obs.Counter
	pushes           *obs.Counter
	pushErrors       *obs.Counter
	inventoryDigests *obs.Gauge
	inventoryErrors  *obs.Counter
}

// member is one registered participant of the controlled mesh.
type member struct {
	host string
	addr wire.Endpoint
	push bool
	// last is the most recently acked table push, for diff suppression.
	// nil means "never successfully pushed" and always triggers a push.
	last []wire.RouteEntry
}

// Controller runs the probe → forecast → replan → push loop.
type Controller struct {
	cfg Config
	met metrics

	mu      sync.Mutex
	members []*member
	index   map[string]int // host name → topology index
	epoch   uint64
	rounds  int
	// holders is the mesh-wide cache inventory of the last round:
	// content digest → sorted names of hosts holding it complete.
	holders map[wire.ContentDigest][]string
}

// New validates the configuration and builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Planner == nil {
		return nil, fmt.Errorf("ctl: Config.Planner is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ProbeBytes == 0 {
		cfg.ProbeBytes = DefaultProbeBytes
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = DefaultPushTimeout
	}
	if cfg.RefreshEvery == 0 {
		cfg.RefreshEvery = DefaultRefreshEvery
	}
	if cfg.Probe == nil && cfg.Dial == nil {
		return nil, fmt.Errorf("ctl: Config.Dial is required for wire probes")
	}
	c := &Controller{cfg: cfg, index: make(map[string]int)}
	for i, name := range cfg.Planner.Topo.HostNames() {
		c.index[name] = i
	}
	r := cfg.Metrics
	c.met = metrics{
		epoch:            r.Gauge(MetricEpoch),
		depots:           r.Gauge(MetricDepots),
		rounds:           r.Counter(MetricRounds),
		probes:           r.Counter(MetricProbes),
		probeErrors:      r.Counter(MetricProbeErrors),
		replans:          r.Counter(MetricReplans),
		routeChanges:     r.Counter(MetricRouteChanges),
		pushes:           r.Counter(MetricPushes),
		pushErrors:       r.Counter(MetricPushErrors),
		inventoryDigests: r.Gauge(MetricInventoryDigests),
		inventoryErrors:  r.Counter(MetricInventoryErrors),
	}
	return c, nil
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Register adds a mesh member: a topology host reachable at addr. Hosts
// with push=true receive route-table pushes (depots); push=false hosts
// are probed but not pushed (pure endpoints). Registering a host again
// updates its address and push flag and forgets its push history.
func (c *Controller) Register(host string, addr wire.Endpoint, push bool) error {
	if _, ok := c.index[host]; !ok {
		return fmt.Errorf("ctl: host %q not in topology %q", host, c.cfg.Planner.Topo.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.host == host {
			m.addr, m.push, m.last = addr, push, nil
			return nil
		}
	}
	c.members = append(c.members, &member{host: host, addr: addr, push: push})
	c.met.depots.Set(int64(len(c.members)))
	return nil
}

// Deregister removes a member from the mesh. Unknown hosts are a no-op.
func (c *Controller) Deregister(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.members {
		if m.host == host {
			c.members = append(c.members[:i], c.members[i+1:]...)
			break
		}
	}
	c.met.depots.Set(int64(len(c.members)))
}

// Epoch returns the controller's current table epoch (0 before the
// first route push).
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// RoundReport summarizes one control round.
type RoundReport struct {
	// Probes counts attempted link measurements; ProbeErrors the subset
	// that failed (failed probes feed nothing into the forecasters, so
	// the last forecast simply persists).
	Probes, ProbeErrors int
	// Epoch is the controller's table epoch after the round.
	Epoch uint64
	// Changed lists the hosts whose computed table differed from their
	// last acked push this round.
	Changed []string
	// Pushed counts table pushes acked by depots; PushErrors those that
	// dialed, wrote or acked wrong (they stay dirty and re-push next
	// round).
	Pushed, PushErrors int
	// Inventoried counts members whose cache inventory was collected
	// this round; InventoryErrors the polls that failed outright
	// (refusals from cacheless depots count as neither).
	Inventoried, InventoryErrors int
}

// Round runs one probe → replan → diff → push cycle. It is the unit
// Run repeats; tests and the -once daemon mode call it directly. The
// context bounds the whole round.
func (c *Controller) Round(ctx context.Context) (RoundReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep RoundReport
	c.rounds++
	c.met.rounds.Inc()

	// Probe the full ordered mesh of registered members.
	probe := c.cfg.Probe
	if probe == nil {
		probe = c.wireProbe
	}
	for _, src := range c.members {
		for _, dst := range c.members {
			if src == dst {
				continue
			}
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			rep.Probes++
			c.met.probes.Inc()
			bw, err := probe(src.host, dst.host)
			if err != nil {
				rep.ProbeErrors++
				c.met.probeErrors.Inc()
				c.logf("ctl: probe %s -> %s: %v", src.host, dst.host, err)
				continue
			}
			if err := c.cfg.Planner.Observe(src.host, dst.host, bw); err != nil {
				return rep, fmt.Errorf("ctl: observe %s -> %s: %w", src.host, dst.host, err)
			}
		}
	}

	if err := c.cfg.Planner.Replan(); err != nil {
		return rep, fmt.Errorf("ctl: replan: %w", err)
	}
	c.met.replans.Inc()

	// Aggregate the mesh-wide cache inventory alongside the bandwidth
	// measurements: one round yields both the cost picture and the
	// content picture cache-aware planning needs.
	c.refreshInventory(&rep)

	// Compute each push member's wire table and diff it against the last
	// acked push. The ε damping inside Replan is what makes this diff
	// meaningful: within-ε forecast jitter reproduces identical trees,
	// hence identical tables, hence no pushes.
	refresh := c.cfg.RefreshEvery > 0 && c.rounds%c.cfg.RefreshEvery == 0
	type pending struct {
		m       *member
		entries []wire.RouteEntry
	}
	var dirty []pending
	for _, m := range c.members {
		if !m.push {
			continue
		}
		entries, err := c.wireTable(m.host)
		if err != nil {
			return rep, fmt.Errorf("ctl: route table for %s: %w", m.host, err)
		}
		if m.last != nil && equalTables(m.last, entries) && !refresh {
			continue
		}
		if m.last == nil || !equalTables(m.last, entries) {
			rep.Changed = append(rep.Changed, m.host)
			c.met.routeChanges.Inc()
			obs.Emit(c.cfg.Trace, obs.Event{
				Kind: obs.KindRoutes, Node: c.cfg.Self.String(), Peer: m.addr.String(),
				Detail: fmt.Sprintf("routes for %s changed (%d entries)", m.host, len(entries)),
			})
		}
		dirty = append(dirty, pending{m: m, entries: entries})
	}

	// One new epoch covers every push of the round, so depots that
	// receive it agree on the table version.
	if len(dirty) > 0 {
		c.epoch++
		c.met.epoch.Set(int64(c.epoch))
	}
	rep.Epoch = c.epoch
	for _, p := range dirty {
		if err := c.push(ctx, p.m, c.epoch, p.entries); err != nil {
			rep.PushErrors++
			c.met.pushErrors.Inc()
			c.logf("ctl: push to %s (%s): %v", p.m.host, p.m.addr, err)
			// m.last stays as it was, so the push retries next round.
			continue
		}
		p.m.last = p.entries
		rep.Pushed++
		c.met.pushes.Inc()
	}
	c.logf("ctl: round %d: probes=%d probe-errors=%d epoch=%d changed=%d pushed=%d push-errors=%d",
		c.rounds, rep.Probes, rep.ProbeErrors, rep.Epoch, len(rep.Changed), rep.Pushed, rep.PushErrors)
	return rep, nil
}

// Run repeats Round at the configured interval until the context ends,
// starting with an immediate round. Round errors are logged, not fatal:
// the loop is the controller's reason to exist and a transient planner
// or transport failure must not end it.
func (c *Controller) Run(ctx context.Context) error {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		if _, err := c.Round(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			c.logf("ctl: round: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// wireTable maps host's planner route table (topology indices) to wire
// endpoints, skipping destinations or hops with no registered address.
// Entries come back sorted by destination so equal tables are equal
// slices.
func (c *Controller) wireTable(host string) ([]wire.RouteEntry, error) {
	idx, ok := c.index[host]
	if !ok {
		return nil, fmt.Errorf("unknown host %q", host)
	}
	rt, err := c.cfg.Planner.RouteTable(idx)
	if err != nil {
		return nil, err
	}
	addrOf := make(map[int]wire.Endpoint, len(c.members))
	for _, m := range c.members {
		addrOf[c.index[m.host]] = m.addr
	}
	entries := make([]wire.RouteEntry, 0, len(rt))
	for dst, next := range rt {
		da, ok := addrOf[int(dst)]
		if !ok {
			continue
		}
		na, ok := addrOf[int(next)]
		if !ok {
			continue
		}
		entries = append(entries, wire.RouteEntry{Dst: da, Next: na})
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Dst.String() < entries[j].Dst.String()
	})
	return entries, nil
}

// equalTables compares two sorted entry slices.
func equalTables(a, b []wire.RouteEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// push opens a TypeControl session to m, writes the epoch-stamped
// table, and requires an ack echoing the pushed epoch. Any other
// outcome is a failed push.
func (c *Controller) push(ctx context.Context, m *member, epoch uint64, entries []wire.RouteEntry) error {
	if c.cfg.Dial == nil {
		return fmt.Errorf("no dialer configured")
	}
	opts, err := wire.RouteTableOptions(entries)
	if err != nil {
		return err
	}
	conn, err := c.cfg.Dial.Dial(m.addr.String())
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.cfg.PushTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	id, err := wire.NewSessionID()
	if err != nil {
		return err
	}
	h := &wire.Header{
		Version: wire.Version1,
		Type:    wire.TypeControl,
		Session: id,
		Src:     c.cfg.Self,
		Dst:     m.addr,
		Options: append(opts, wire.TableEpochOption(epoch)),
	}
	if err := wire.WriteHeader(conn, h); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	ack, err := wire.ReadHeader(conn)
	if err != nil {
		return fmt.Errorf("ack: %w", err)
	}
	if ack.Type == wire.TypeRefuse {
		return fmt.Errorf("refused: %w", lsl.ErrRefused)
	}
	if got := ack.TableEpoch(); got != epoch {
		return fmt.Errorf("ack epoch %d, pushed %d", got, epoch)
	}
	return nil
}

// wireProbe measures src→dst with a generate session: it asks src's
// depot to synthesize ProbeBytes and forward them directly to dst (the
// remaining source route pins the direct hop, so table-driven depots
// cannot contaminate the measurement), then times until the depot's
// completion close. Bandwidth is bytes over elapsed seconds — an
// approximation biased by the probe's slow-start ramp, which the
// forecasters smooth like any other noisy sensor reading.
func (c *Controller) wireProbe(src, dst string) (float64, error) {
	sa, da, err := c.memberAddrs(src, dst)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	// Each probe is its own traced transfer: the depot-side events it
	// provokes correlate under one id, distinguishable from data
	// traffic when timelines are assembled.
	var extra []wire.Option
	if tid, terr := wire.NewTraceID(); terr == nil {
		extra = append(extra, wire.TraceIDOption(tid))
	}
	sess, err := lsl.OpenGenerate(c.cfg.Dial, c.cfg.Self, da, []wire.Endpoint{sa}, c.cfg.ProbeBytes, extra...)
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	_ = sess.SetReadDeadline(time.Now().Add(c.cfg.PushTimeout))
	if _, err := io.Copy(io.Discard, sess); err != nil {
		return 0, fmt.Errorf("probe read: %w", err)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("probe finished in zero time")
	}
	return float64(c.cfg.ProbeBytes) / elapsed, nil
}

// memberAddrs resolves two member hosts to their registered addresses.
// Callers hold c.mu.
func (c *Controller) memberAddrs(src, dst string) (sa, da wire.Endpoint, err error) {
	var haveS, haveD bool
	for _, m := range c.members {
		if m.host == src {
			sa, haveS = m.addr, true
		}
		if m.host == dst {
			da, haveD = m.addr, true
		}
	}
	if !haveS || !haveD {
		return sa, da, fmt.Errorf("ctl: unregistered probe pair %s -> %s", src, dst)
	}
	return sa, da, nil
}
