package ctl

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"testing"

	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

func testDigest(b byte) wire.ContentDigest {
	d := wire.ContentDigest{Size: 64}
	d.Sum[0] = b
	return d
}

// TestInventoryAggregation: a round folds every member's inventory into
// one digest→holders map, holders sorted by name, absent digests empty.
func TestInventoryAggregation(t *testing.T) {
	r := newRig(t)
	reg := obs.NewRegistry()
	d1, d2 := testDigest(1), testDigest(2)
	inv := map[string][]wire.ContentDigest{
		"a": {d1},
		"b": {d2, d1},
		"c": nil,
	}
	c := r.controller(Config{Probe: r.probe, Metrics: reg,
		Inventory: func(host string) ([]wire.ContentDigest, error) { return inv[host], nil }})

	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inventoried != 3 || rep.InventoryErrors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if got := c.Holders(d1); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Holders(d1) = %v, want [a b]", got)
	}
	if got := c.Holders(d2); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Holders(d2) = %v, want [b]", got)
	}
	if got := c.Holders(testDigest(9)); len(got) != 0 {
		t.Fatalf("Holders(unknown) = %v, want empty", got)
	}
	if c.InventorySize() != 2 {
		t.Fatalf("InventorySize = %d, want 2", c.InventorySize())
	}
	if v := reg.Gauge(MetricInventoryDigests).Value(); v != 2 {
		t.Fatalf("%s = %d, want 2", MetricInventoryDigests, v)
	}

	// The next round rebuilds from scratch: a holder that evicted the
	// object must disappear, not linger.
	inv["a"] = nil
	if _, err := c.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Holders(d1); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Holders(d1) after eviction = %v, want [b]", got)
	}
}

// TestInventoryBestEffort: a member that refuses (no cache) contributes
// nothing silently; one that fails outright is counted as an error and
// likewise skipped — neither sinks the round.
func TestInventoryBestEffort(t *testing.T) {
	r := newRig(t)
	reg := obs.NewRegistry()
	d1 := testDigest(1)
	c := r.controller(Config{Probe: r.probe, Metrics: reg,
		Inventory: func(host string) ([]wire.ContentDigest, error) {
			switch host {
			case "a":
				return nil, lsl.ErrRefused
			case "b":
				return nil, errors.New("poll timed out")
			default:
				return []wire.ContentDigest{d1}, nil
			}
		}})

	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inventoried != 1 || rep.InventoryErrors != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := c.Holders(d1); len(got) != 1 || got[0] != "c" {
		t.Fatalf("Holders(d1) = %v, want [c]", got)
	}
	if v := reg.Counter(MetricInventoryErrors).Value(); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricInventoryErrors, v)
	}
}

// TestWireInventoryPollsDepotCaches exercises the default (un-injected)
// path end to end: a real depot with a populated cache answers the
// controller's wire poll, a cacheless depot refuses, and the round's
// holder map reflects exactly that.
func TestWireInventoryPollsDepotCaches(t *testing.T) {
	tp, err := topo.New("inv-test", []topo.Host{
		{Name: "plain", Site: "sp", Depot: true},
		{Name: "cached", Site: "sc", Depot: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := schedule.NewPlanner(tp, -1)
	if err != nil {
		t.Fatal(err)
	}
	n := emu.NewNetwork(0.001)
	addrPlain := wire.MustEndpoint("10.1.0.1:7411")
	addrCached := wire.MustEndpoint("10.1.0.2:7411")
	self := wire.MustEndpoint("10.1.9.1:7500")

	ch, err := cache.New(cache.Config{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("cache inventory wire test object")
	digest := wire.ContentDigest{Size: int64(len(payload)), Sum: sha256.Sum256(payload)}
	if err := ch.Put(digest, 0, payload); err != nil {
		t.Fatal(err)
	}

	serve := func(addr wire.Endpoint, cc *cache.Cache) {
		t.Helper()
		host := fmt.Sprintf("%d.%d.%d.%d", addr.IP[0], addr.IP[1], addr.IP[2], addr.IP[3])
		srv, err := depot.New(depot.Config{
			Self:  addr,
			Dial:  lsl.DialerFunc(func(a string) (net.Conn, error) { return n.Dial(host, a) }),
			Cache: cc,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := n.Listen(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close(); ln.Close() })
		go srv.Serve(ln)
	}
	serve(addrPlain, nil)
	serve(addrCached, ch)

	c, err := New(Config{
		Planner: p,
		Self:    self,
		Dial:    lsl.DialerFunc(func(a string) (net.Conn, error) { return n.Dial("10.1.9.1", a) }),
		Probe:   func(src, dst string) (float64, error) { return 100, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register("plain", addrPlain, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("cached", addrCached, false); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inventoried != 1 || rep.InventoryErrors != 0 {
		t.Fatalf("report = %+v, want exactly the caching depot inventoried", rep)
	}
	if got := c.Holders(digest); len(got) != 1 || got[0] != "cached" {
		t.Fatalf("Holders = %v, want [cached]", got)
	}
}
