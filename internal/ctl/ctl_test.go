package ctl

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/emu"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

var (
	addrA    = wire.MustEndpoint("10.0.0.1:7411")
	addrB    = wire.MustEndpoint("10.0.0.2:7411")
	addrC    = wire.MustEndpoint("10.0.0.3:7411")
	addrCtl  = wire.MustEndpoint("10.0.9.1:7500")
	ctlHosts = map[string]wire.Endpoint{"a": addrA, "b": addrB, "c": addrC}
)

// rig is a three-host mesh (a, c endpoints; b the only relay-capable
// depot) with real depot servers on an emulated network and a mutable
// probe bandwidth matrix.
type rig struct {
	t       *testing.T
	net     *emu.Network
	planner *schedule.Planner
	depots  map[string]*depot.Server

	mu sync.Mutex
	bw map[[2]string]float64
}

func newRig(t *testing.T) *rig {
	t.Helper()
	tp, err := topo.New("ctl-test", []topo.Host{
		{Name: "a", Site: "sa"},
		{Name: "b", Site: "sb", Depot: true},
		{Name: "c", Site: "sc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := schedule.NewPlanner(tp, -1)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		t:       t,
		net:     emu.NewNetwork(0.001),
		planner: p,
		depots:  make(map[string]*depot.Server),
		bw: map[[2]string]float64{
			{"a", "b"}: 100, {"b", "a"}: 100,
			{"b", "c"}: 100, {"c", "b"}: 100,
			{"a", "c"}: 10, {"c", "a"}: 10,
		},
	}
	for host, addr := range ctlHosts {
		r.depots[host] = r.addDepot(addr)
	}
	return r
}

func (r *rig) addDepot(addr wire.Endpoint) *depot.Server {
	r.t.Helper()
	host := addr.String()
	host = host[:len(host)-len(":7411")]
	srv, err := depot.New(depot.Config{
		Self:          addr,
		Dial:          lsl.DialerFunc(func(a string) (net.Conn, error) { return r.net.Dial(host, a) }),
		AcceptControl: true,
		TableDriven:   true,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	ln, err := r.net.Listen(addr.String())
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(func() { srv.Close(); ln.Close() })
	go srv.Serve(ln)
	return srv
}

func (r *rig) probe(src, dst string) (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bw[[2]string{src, dst}], nil
}

func (r *rig) setBW(src, dst string, bw float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bw[[2]string{src, dst}] = bw
	r.bw[[2]string{dst, src}] = bw
}

func (r *rig) controller(cfg Config) *Controller {
	r.t.Helper()
	cfg.Planner = r.planner
	cfg.Self = addrCtl
	if cfg.Dial == nil {
		cfg.Dial = lsl.DialerFunc(func(a string) (net.Conn, error) { return r.net.Dial("10.0.9.1", a) })
	}
	c, err := New(cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	for host, addr := range ctlHosts {
		if err := c.Register(host, addr, true); err != nil {
			r.t.Fatal(err)
		}
	}
	return c
}

func TestRoundProbesReplansAndPushes(t *testing.T) {
	r := newRig(t)
	reg := obs.NewRegistry()
	c := r.controller(Config{Probe: r.probe, Metrics: reg})
	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 6 || rep.ProbeErrors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Epoch != 1 || rep.Pushed != 3 || rep.PushErrors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for host, srv := range r.depots {
		if srv.RouteEpoch() != 1 {
			t.Fatalf("depot %s epoch %d, want 1", host, srv.RouteEpoch())
		}
	}
	if v := reg.Gauge(MetricEpoch).Value(); v != 1 {
		t.Fatalf("%s = %d", MetricEpoch, v)
	}
	if v := reg.Counter(MetricRouteChanges).Value(); v != 3 {
		t.Fatalf("%s = %d", MetricRouteChanges, v)
	}
	// The strong a—b—c mesh must route a→c through the depot b.
	path, err := r.planner.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("planned path = %v, want a-b-c", path)
	}
}

func TestHysteresisSuppressesSteadyStatePushes(t *testing.T) {
	r := newRig(t)
	c := r.controller(Config{Probe: r.probe})
	if _, err := c.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := c.Round(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pushed != 0 || len(rep.Changed) != 0 {
			t.Fatalf("steady round %d pushed %d (changed %v), want 0", i, rep.Pushed, rep.Changed)
		}
		if rep.Epoch != 1 {
			t.Fatalf("steady round %d epoch %d, want 1", i, rep.Epoch)
		}
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", c.Epoch())
	}
}

func TestDegradationTriggersRepush(t *testing.T) {
	r := newRig(t)
	c := r.controller(Config{Probe: r.probe})
	if _, err := c.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The relay leg collapses below the direct path: the plan must move
	// a→c off b, and the changed tables must reach the depots under a
	// fresh epoch.
	r.setBW("b", "c", 1)
	var rep RoundReport
	var err error
	for i := 0; i < 10; i++ {
		rep, err = c.Round(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pushed > 0 {
			break
		}
	}
	if rep.Pushed == 0 {
		t.Fatal("degradation never triggered a push")
	}
	if rep.Epoch < 2 {
		t.Fatalf("epoch %d after degradation, want >= 2", rep.Epoch)
	}
	path, err := r.planner.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("planned path = %v, want direct a-c", path)
	}
	if got := r.depots["a"].RouteEpoch(); got != rep.Epoch {
		t.Fatalf("depot a epoch %d, want %d", got, rep.Epoch)
	}
}

func TestPushFailureRetriesNextRound(t *testing.T) {
	r := newRig(t)
	c := r.controller(Config{Probe: r.probe, PushTimeout: time.Second})
	// Point member c at an address nothing listens on.
	dead := wire.MustEndpoint("10.0.0.9:7411")
	if err := c.Register("c", dead, true); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PushErrors == 0 {
		t.Fatalf("report = %+v, want push errors", rep)
	}
	// The member heals (same address now listening): the unacked table
	// must be re-pushed even though the routes did not change again.
	r.addDepot(dead)
	rep, err = c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pushed == 0 || rep.PushErrors != 0 {
		t.Fatalf("report after heal = %+v, want a successful re-push", rep)
	}
}

func TestRefreshRepushesUnchangedTables(t *testing.T) {
	r := newRig(t)
	c := r.controller(Config{Probe: r.probe, RefreshEvery: 2})
	if _, err := c.Round(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Round(context.Background()) // round 2: refresh fires
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pushed != 3 {
		t.Fatalf("refresh round pushed %d, want 3", rep.Pushed)
	}
	if len(rep.Changed) != 0 {
		t.Fatalf("refresh round reported changes %v, want none", rep.Changed)
	}
}

func TestWireProbeMeasuresMesh(t *testing.T) {
	r := newRig(t)
	c := r.controller(Config{ProbeBytes: 64 << 10, PushTimeout: 5 * time.Second})
	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeErrors != 0 {
		t.Fatalf("report = %+v, want no probe errors", rep)
	}
	if rep.Pushed != 3 {
		t.Fatalf("report = %+v, want 3 pushes", rep)
	}
	if r.planner.Replans() != 1 {
		t.Fatalf("replans = %d", r.planner.Replans())
	}
}

func TestRegisterRejectsUnknownHost(t *testing.T) {
	r := newRig(t)
	c := r.controller(Config{Probe: r.probe})
	if err := c.Register("nope", addrA, true); err == nil {
		t.Fatal("unknown host registered")
	}
	c.Deregister("c")
	rep, err := c.Round(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 2 {
		t.Fatalf("probes = %d after deregister, want 2", rep.Probes)
	}
}
