package main

import (
	"strings"
	"testing"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"64K", 64 << 10},
		{"16M", 16 << 20},
		{"2G", 2 << 30},
		{" 8m ", 8 << 20},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "M", "-4M", "0", "12Q"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

// TestExclusiveModes drives the central send-mode validation: every
// mode flag alone is fine, any pair is rejected, and the off values
// (stripes 1, multipath 0) select no mode at all.
func TestExclusiveModes(t *testing.T) {
	cases := []struct {
		name                           string
		cached, table, store, generate bool
		stripes, multipath             int
		want                           []string
	}{
		{name: "plain send", stripes: 1},
		{name: "cached alone", cached: true, stripes: 1, want: []string{"-cached"}},
		{name: "table-driven alone", table: true, stripes: 1, want: []string{"-table-driven"}},
		{name: "store alone", store: true, stripes: 1, want: []string{"-store"}},
		{name: "generate alone", generate: true, stripes: 1, want: []string{"-generate"}},
		{name: "stripes alone", stripes: 4, want: []string{"-stripes"}},
		{name: "multipath alone", stripes: 1, multipath: 2, want: []string{"-multipath"}},
		{name: "single-route multipath still a mode", stripes: 1, multipath: 1, want: []string{"-multipath"}},
		{name: "cached+stripes", cached: true, stripes: 2, want: []string{"-cached", "-stripes"}},
		{name: "cached+multipath", cached: true, stripes: 1, multipath: 2, want: []string{"-cached", "-multipath"}},
		{name: "stripes+multipath", stripes: 4, multipath: 2, want: []string{"-stripes", "-multipath"}},
		{name: "store+generate", store: true, generate: true, stripes: 1, want: []string{"-store", "-generate"}},
		{name: "table+multipath", table: true, stripes: 1, multipath: 3, want: []string{"-table-driven", "-multipath"}},
		{name: "three modes", cached: true, stripes: 8, multipath: 2, want: []string{"-cached", "-stripes", "-multipath"}},
	}
	for _, c := range cases {
		got := exclusiveModes(c.cached, c.table, c.store, c.generate, c.stripes, c.multipath)
		if len(got) != len(c.want) {
			t.Errorf("%s: modes = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: modes = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

// TestParseMultipathRoutes covers the ';'-separated route grammar,
// including the empty group (the direct path) and malformed endpoints.
func TestParseMultipathRoutes(t *testing.T) {
	routes, err := parseMultipathRoutes("10.0.0.1:7411,10.0.0.2:7411;10.0.0.3:7411")
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 || len(routes[0]) != 2 || len(routes[1]) != 1 {
		t.Fatalf("routes = %v, want a 2-hop and a 1-hop route", routes)
	}
	if routes[0][1].String() != "10.0.0.2:7411" || routes[1][0].String() != "10.0.0.3:7411" {
		t.Fatalf("routes = %v", routes)
	}

	// An empty group is a direct route; whitespace is tolerated.
	routes, err = parseMultipathRoutes(" 10.0.0.1:7411 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 || len(routes[0]) != 1 || len(routes[1]) != 0 {
		t.Fatalf("routes = %v, want one depot route and one direct route", routes)
	}

	if _, err := parseMultipathRoutes("not-an-endpoint;10.0.0.1:7411"); err == nil {
		t.Fatal("malformed endpoint accepted")
	}
}

// TestMultipathSendRanges checks the shared work list: contiguous
// cover of the object, several ranges per route for rebalancing, and
// the 64 KiB floor.
func TestMultipathSendRanges(t *testing.T) {
	cases := []struct {
		size int64
		k    int
		want int
	}{
		{size: 8 << 20, k: 2, want: 8},
		{size: 256 << 10, k: 2, want: 4},
		{size: 100 << 10, k: 3, want: 3},
		{size: 2, k: 3, want: 2},
	}
	for _, c := range cases {
		ranges := multipathSendRanges(c.size, c.k)
		if len(ranges) != c.want {
			t.Errorf("multipathSendRanges(%d, %d): %d ranges, want %d", c.size, c.k, len(ranges), c.want)
			continue
		}
		var off int64
		for i, r := range ranges {
			if r.from != off || r.end <= r.from {
				t.Fatalf("range %d = %+v, want contiguous from %d", i, r, off)
			}
			off = r.end
		}
		if off != c.size {
			t.Fatalf("ranges cover %d of %d bytes", off, c.size)
		}
	}
}

// TestExclusiveModesMessage pins the shape of the usage error body so
// the rejection names every offending flag.
func TestExclusiveModesMessage(t *testing.T) {
	modes := exclusiveModes(true, false, false, false, 4, 2)
	msg := strings.Join(modes, " and ")
	for _, want := range []string{"-cached", "-stripes", "-multipath"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %s", msg, want)
		}
	}
}
