package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"64K", 64 << 10},
		{"16M", 16 << 20},
		{"2G", 2 << 30},
		{" 8m ", 8 << 20},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "M", "-4M", "0", "12Q"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
