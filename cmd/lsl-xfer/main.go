// Command lsl-xfer moves data over the Logistical Session Layer on
// real TCP sockets.
//
// Sender mode pushes pattern data to a destination, optionally through
// a loose source route of depots:
//
//	lsl-xfer -to 198.51.100.9:7411 -size 64M \
//	         [-via 198.51.100.7:7411,198.51.100.8:7411] [-src ip:port]
//
// With -generate, the first hop (a depot) synthesizes the data instead
// of the local machine sending it — the paper's test-traffic mechanism:
//
//	lsl-xfer -to sink:7411 -via depot:7411 -size 16M -generate
//
// Recovery: -retries N re-runs a failed plain send up to N times with
// exponential backoff (-retry-backoff sets the base delay); -failover
// additionally abandons the -via depot route on the first retry and
// dials -to directly. Each attempt restarts from byte zero under a
// fresh session id — real TCP gives the sender no ack channel to
// resume from, unlike the in-process library transfers.
//
// Striping: -stripes N opens N parallel sublink chains sharing one
// session id, each carrying a contiguous byte range of the object
// announced through the resume-offset option. A window-limited path
// delivers roughly N times the single-connection throughput; -retries
// applies per stripe, restarting only the failed stripe's range:
//
//	lsl-xfer -to sink:7411 -via depot:7411 -size 64M -stripes 4
//
// Multipath: -multipath K fans the object across K depot routes given
// as ';'-separated -via groups (each group its own comma-separated
// depot chain; an empty group dials -to directly). Every route session
// shares one session id plus a path-set identifier carried in the
// header, and each route pulls contiguous chunk ranges off a shared
// work list as its previous write drains — TCP back-pressure
// self-clocks the routes, so a faster route simply carries more of the
// object. -retries applies per range on its owning route:
//
//	lsl-xfer -to sink:7411 -via "a:7411,b:7411;c:7411" -multipath 2
//
// The mode flags -cached, -stripes, -multipath, -table-driven, -store,
// and -generate are mutually exclusive: each owns the whole session
// layout, so combinations are rejected with a usage error.
//
// Table-driven mode hands routing to the control plane: the sender
// dials a single entry depot (-via) with no source route, and every
// depot on the way forwards by the route table its lsl-ctl controller
// pushed. A depot with no table entry for the destination refuses the
// session rather than guessing:
//
//	lsl-xfer -to sink:7411 -via mydepot:7411 -size 16M -table-driven
//
// Fair sharing: -weight N stamps the session with a fair-share weight
// option; depots running the weighted scheduler (lsl-depot -fair-share)
// grant the session N× a weight-1 competitor's bandwidth at their
// downstream trunk. Depots without the scheduler forward the option
// untouched:
//
//	lsl-xfer -to sink:7411 -via depot:7411 -size 64M -weight 4
//
// Integrity: -verify-integrity arms end-to-end data integrity on any
// send. The payload travels as CRC-32C-framed chunks that every depot
// on the path verifies and re-stamps — a corrupting hop is caught at
// the first depot after the damage, which refuses the session and
// counts the error — and a plain (unstriped) send additionally carries
// a whole-object SHA-256 digest the sink checks after the last byte.
// The sink side needs no flag: it honors whatever integrity options the
// session header carries:
//
//	lsl-xfer -to sink:7411 -via depot:7411 -size 64M -verify-integrity
//
// Cached sends: -cached probes the -via depots' content-addressed
// caches for the object before sending. The send carries a content
// digest and CRC framing (so depots on the path populate their caches
// as they forward), and when a probed depot already holds a suffix of
// the object, the sender ships only the cold prefix itself and directs
// that depot to serve the cached remainder toward the sink — the
// origin-offload path. Repeats of the same object must reuse the first
// send's session id (the payload pattern, and hence the digest, is
// keyed by it), so the first -cached run prints the -id to repeat with:
//
//	lsl-xfer -to sink:7411 -via depot:7411 -size 64M -cached
//	lsl-xfer -to sink:7411 -via depot:7411 -size 64M -cached -id <hex>
//
// A holder that refuses the serve directive (evicted, damaged spans)
// is ignored and the sender falls back to shipping the remainder from
// the origin. Delivery accounting is best-effort over real TCP — the
// sink's log line is the ground truth for what landed.
//
// Sink mode accepts sessions, verifies the payload pattern, and prints
// per-session throughput:
//
//	lsl-xfer -sink -listen 0.0.0.0:7411 -self 198.51.100.9:7411
//
// Telemetry: -trace-out FILE appends the session's lifecycle events as
// JSON lines (the sender emits hop 0; a sink emits its own hop), and
// -sample INTERVAL samples the cumulative bytes this side has pushed
// into (or pulled from) its socket, printing a sequence table after the
// transfer — the Figure 5-style curve whose knee marks downstream
// back-pressure. With both flags the samples are appended to the trace
// file as "sample" events.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"hash"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/trace"
	"github.com/netlogistics/lsl/internal/wire"
)

var (
	to         = flag.String("to", "", "destination ip:port")
	via        = flag.String("via", "", "comma-separated depot ip:port hops (with -multipath: ';'-separated routes, each a comma-separated chain)")
	src        = flag.String("src", "0.0.0.0:0", "source endpoint label carried in the header")
	sizeSpec   = flag.String("size", "16M", "bytes to move (suffixes K, M, G)")
	generate   = flag.Bool("generate", false, "ask the first hop to generate the data")
	store      = flag.Bool("store", false, "store at the destination depot instead of delivering (async mode); prints the session id")
	fetchID    = flag.String("fetch", "", "fetch the stored session with this hex id from -to")
	sink       = flag.Bool("sink", false, "run as a verifying sink instead of a sender")
	listen     = flag.String("listen", "0.0.0.0:7411", "sink: TCP listen address")
	selfAddr   = flag.String("self", "", "sink: public ip:port (required with -sink)")
	traceOut   = flag.String("trace-out", "", "append session trace events to this file as JSON lines")
	tracePush  = flag.String("trace-push", "", "POST batched trace events to this collector ingest URL, e.g. http://ctl:7502/traces/ingest")
	sampleIvl  = flag.Duration("sample", 0, "sample sent/received bytes at this interval and print a sequence table (0 = off)")
	retries    = flag.Int("retries", 0, "retry a failed send this many times with backoff (plain send mode only)")
	backoff    = flag.Duration("retry-backoff", 500*time.Millisecond, "base delay before the first retry (doubles each retry)")
	failover   = flag.Bool("failover", false, "on retry, abandon the -via depot route and dial -to directly")
	stripesN   = flag.Int("stripes", 1, "send over this many parallel sublinks sharing one session id (plain send mode only)")
	tableMode  = flag.Bool("table-driven", false, "send with no source route through one -via entry depot; depots route by controller-pushed tables")
	weight     = flag.Int("weight", 1, "fair-share weight (1..65535) carried in the session header; fair-share depots grant bandwidth in proportion")
	verifyInt  = flag.Bool("verify-integrity", false, "send CRC-32C-framed chunks every depot hop verifies; plain sends also carry a whole-object SHA-256 digest the sink checks")
	multipathN = flag.Int("multipath", 0, "fan the send across this many ';'-separated -via depot routes sharing one session id (0 = off; plain send mode only)")
	cached     = flag.Bool("cached", false, "probe the -via depots' content caches and have a holder serve the cached suffix toward -to, sending only the cold prefix from here (implies integrity framing)")
	idSpec     = flag.String("id", "", "with -cached, reuse this 32-hex-digit session id so the repeat names the same object (empty = mint a new one)")
)

func main() {
	flag.Parse()
	if *weight < 1 || *weight > 65535 {
		log.Fatalf("lsl-xfer: -weight %d out of range 1..65535", *weight)
	}
	if *idSpec != "" && !*cached {
		log.Fatalf("lsl-xfer: -id only applies to -cached sends")
	}
	var err error
	switch {
	case *sink:
		err = runSink()
	case *fetchID != "":
		err = runFetch()
	default:
		err = runSend()
	}
	if err != nil {
		log.Fatalf("lsl-xfer: %v", err)
	}
}

// openTrace opens the configured trace sinks — the -trace-out JSONL
// file, the -trace-push collector shipper, or both — or returns a nil
// Sink (no-op) when neither flag is set. close is always safe to call.
func openTrace() (obs.Sink, func(), error) {
	var sinks obs.MultiSink
	var closers []func()
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, func() {}, fmt.Errorf("trace-out: %w", err)
		}
		sinks = append(sinks, obs.NewJSONSink(f))
		closers = append(closers, func() { f.Close() })
	}
	if *tracePush != "" {
		push := obs.NewPushSink(obs.PushConfig{URL: *tracePush})
		sinks = append(sinks, push)
		closers = append(closers, push.Close)
	}
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	if len(sinks) == 0 {
		return nil, closeAll, nil
	}
	return sinks, closeAll, nil
}

// xferTrace is the end-to-end trace id of this invocation's transfer,
// minted once per send so every attempt, stripe, and depot hop shares
// it. Zero (untraced) when minting was never requested or entropy
// failed — tracing is best-effort by design.
var xferTrace wire.TraceID

// mintTrace mints the invocation-wide trace id.
func mintTrace() {
	if tid, err := wire.NewTraceID(); err == nil {
		xferTrace = tid
	}
}

// sessionOpts returns the wire options every attempt of this
// invocation carries: the minted trace id (when tracing succeeded), the
// fair-share weight (when above the default, so unweighted sends put
// nothing extra on the wire), and the chunk-checksum option when
// -verify-integrity armed per-hop verification.
func sessionOpts() []wire.Option {
	var opts []wire.Option
	if !xferTrace.IsZero() {
		opts = append(opts, wire.TraceIDOption(xferTrace))
	}
	if *weight > int(wire.DefaultSessionWeight) {
		opts = append(opts, wire.SessionWeightOption(uint16(*weight)))
	}
	if *verifyInt {
		opts = append(opts, wire.ChunkChecksumOption())
	}
	return opts
}

// sendWriter wraps a session for sending: the byte sampler when
// sampling is on, then the chunk framer when the session was opened
// checksummed — so the sampler sees the framed bytes that actually hit
// the socket.
func sendWriter(sess *lsl.Session, sampler *obs.ByteSampler) io.Writer {
	var w io.Writer = sess
	if sampler != nil {
		w = sampler.Writer(sess)
	}
	if sess.Header.Checksummed() {
		w = wire.NewFrameWriter(w)
	}
	return w
}

// newSampler starts the -sample byte sampler, or returns nil when off.
func newSampler(name string) *obs.ByteSampler {
	if *sampleIvl <= 0 {
		return nil
	}
	return obs.NewByteSampler(name, *sampleIvl)
}

// finishSampler prints the sampled sequence table and, when a trace
// sink is present, appends the samples as events.
func finishSampler(s *obs.ByteSampler, tr obs.Sink, base time.Time, session string, node string) {
	if s == nil {
		return
	}
	series := s.Stop()
	fmt.Print(trace.Table([]*trace.Series{series}, 12))
	if tr != nil {
		for _, e := range obs.SeriesEvents(series, base, session, 0, node) {
			if !xferTrace.IsZero() {
				e.Trace = xferTrace.String()
			}
			tr.Emit(e)
		}
	}
}

// emit0 reports a hop-0 (initiator-side) trace event, stamped with the
// invocation's trace id when one was minted.
func emit0(tr obs.Sink, session wire.SessionID, kind string, e obs.Event) {
	e.Kind = kind
	e.Session = session.String()
	e.Node = *src
	if !xferTrace.IsZero() {
		e.Trace = xferTrace.String()
	}
	obs.Emit(tr, e)
}

// runFetch retrieves an asynchronously stored session and verifies its
// pattern.
func runFetch() error {
	if *to == "" {
		return fmt.Errorf("-fetch requires -to <depot>")
	}
	raw, err := hex.DecodeString(*fetchID)
	if err != nil || len(raw) != 16 {
		return fmt.Errorf("-fetch wants a 32-hex-digit session id")
	}
	var id wire.SessionID
	copy(id[:], raw)
	depotEP, err := wire.ParseEndpoint(*to)
	if err != nil {
		return err
	}
	selfEP, err := wire.ParseEndpoint(*src)
	if err != nil {
		return err
	}
	tr, closeTrace, err := openTrace()
	if err != nil {
		return err
	}
	defer closeTrace()
	dial := lsl.DialerFunc(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 10*time.Second)
	})
	start := time.Now()
	sess, err := lsl.Fetch(dial, selfEP, depotEP, id)
	if err != nil {
		return err
	}
	defer sess.Close()
	emit0(tr, id, obs.KindConnect, obs.Event{Peer: depotEP.String()})
	sampler := newSampler("fetch " + id.String())
	var in io.Reader = sess
	if sampler != nil {
		in = sampler.Reader(sess)
	}
	var total int64
	buf := make([]byte, 64<<10)
	for {
		n, rerr := in.Read(buf)
		if n > 0 {
			if total == 0 {
				emit0(tr, id, obs.KindFirstByte, obs.Event{})
			}
			if verr := depot.VerifyPattern(buf[:n], id, total); verr != nil {
				return verr
			}
			total += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr
		}
	}
	emit0(tr, id, obs.KindLastByte, obs.Event{Bytes: total})
	finishSampler(sampler, tr, start, id.String(), *src)
	elapsed := time.Since(start)
	fmt.Printf("fetched session %s: %d bytes in %v = %.2f Mbit/s [OK]\n",
		id, total, elapsed.Round(time.Millisecond),
		float64(total)*8/1e6/elapsed.Seconds())
	return nil
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// sendPattern streams the session's deterministic pattern through w.
func sendPattern(w io.Writer, id wire.SessionID, size int64) (int64, error) {
	buf := make([]byte, 64<<10)
	var written int64
	for written < size {
		n := int64(len(buf))
		if remaining := size - written; remaining < n {
			n = remaining
		}
		depot.FillPattern(buf[:n], id, written)
		m, werr := w.Write(buf[:n])
		written += int64(m)
		if werr != nil {
			return written, werr
		}
	}
	return written, nil
}

func runSend() error {
	if *to == "" {
		fmt.Fprintln(os.Stderr, "lsl-xfer: -to is required")
		flag.Usage()
		os.Exit(2)
	}
	size, err := parseSize(*sizeSpec)
	if err != nil {
		return err
	}
	dst, err := wire.ParseEndpoint(*to)
	if err != nil {
		return err
	}
	srcEP, err := wire.ParseEndpoint(*src)
	if err != nil {
		return err
	}
	if modes := exclusiveModes(*cached, *tableMode, *store, *generate, *stripesN, *multipathN); len(modes) > 1 {
		fmt.Fprintf(os.Stderr, "lsl-xfer: %s are mutually exclusive — pick one send mode\n", strings.Join(modes, " and "))
		flag.Usage()
		os.Exit(2)
	}
	// A -multipath -via names several ';'-separated routes, not one
	// depot chain; its parsing happens in the multipath branch below.
	var route []wire.Endpoint
	if *via != "" && *multipathN == 0 {
		for _, hop := range strings.Split(*via, ",") {
			ep, err := wire.ParseEndpoint(strings.TrimSpace(hop))
			if err != nil {
				return err
			}
			route = append(route, ep)
		}
	}
	tr, closeTrace, err := openTrace()
	if err != nil {
		return err
	}
	defer closeTrace()
	// One trace id spans the whole send: every retry attempt, every
	// stripe, and every depot hop the header reaches.
	mintTrace()
	dial := lsl.DialerFunc(func(addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 10*time.Second)
	})
	firstHop := dst
	if len(route) > 0 {
		firstHop = route[0]
	}

	if *multipathN > 0 {
		routes, perr := parseMultipathRoutes(*via)
		if perr != nil {
			return perr
		}
		if len(routes) != *multipathN {
			return fmt.Errorf("-multipath %d wants %d ';'-separated -via routes (got %d)",
				*multipathN, *multipathN, len(routes))
		}
		return runMultipathSend(dial, srcEP, dst, routes, size, tr)
	}

	if *cached {
		if len(route) == 0 {
			return fmt.Errorf("-cached needs at least one -via depot to probe")
		}
		return runCachedSend(dial, srcEP, dst, route, size, tr)
	}

	if *tableMode {
		if len(route) != 1 {
			return fmt.Errorf("-table-driven needs exactly one -via entry depot (got %d)", len(route))
		}
		return runTableDrivenSend(dial, srcEP, dst, route[0], size, tr)
	}

	if *stripesN > 1 {
		return runStripedSend(dial, srcEP, dst, route, firstHop, size, tr)
	}

	start := time.Now()
	var sess *lsl.Session
	if *store {
		sess, err = lsl.OpenStore(dial, srcEP, dst, route, sessionOpts()...)
		if err != nil {
			return err
		}
		emit0(tr, sess.ID(), obs.KindConnect, obs.Event{Peer: firstHop.String()})
		sampler := newSampler("store " + sess.ID().String())
		w := sendWriter(sess, sampler)
		emit0(tr, sess.ID(), obs.KindFirstByte, obs.Event{})
		written, werr := sendPattern(w, sess.ID(), size)
		if werr != nil {
			return fmt.Errorf("store after %d bytes: %w", written, werr)
		}
		sess.Close()
		emit0(tr, sess.ID(), obs.KindLastByte, obs.Event{Bytes: written})
		finishSampler(sampler, tr, start, sess.ID().String(), *src)
		fmt.Printf("stored session %s at %s: %d bytes in %v (fetch with: lsl-xfer -to %s -fetch %s)\n",
			sess.ID(), dst, size, time.Since(start).Round(time.Millisecond), dst, sess.ID())
		return nil
	} else if *generate {
		if len(route) == 0 {
			return fmt.Errorf("-generate needs at least one -via depot to do the generating")
		}
		sess, err = lsl.OpenGenerate(dial, srcEP, dst, route, uint64(size), sessionOpts()...)
		if err != nil {
			return err
		}
		emit0(tr, sess.ID(), obs.KindConnect, obs.Event{Peer: firstHop.String()})
		// The depot closes the control connection when generation ends.
		io.Copy(io.Discard, sess) //nolint:errcheck // EOF is the signal
		sess.Close()
		emit0(tr, sess.ID(), obs.KindLastByte, obs.Event{Bytes: size})
	} else {
		// Each retry restarts from byte zero: over real TCP the sender
		// has no ack channel back from the sink, so it cannot know which
		// prefix landed (the in-process core library resumes at the
		// acked offset instead). A new attempt is a new session id.
		attemptRoute := route
		pol := retry.Policy{MaxAttempts: *retries + 1, BaseDelay: *backoff}
		err = pol.Do(context.Background(), func(attempt int) error {
			if attempt > 0 {
				if *failover && len(attemptRoute) > 0 {
					log.Printf("failover: abandoning depot route, dialing %s directly", dst)
					attemptRoute = nil
				}
				log.Printf("retry %d of %d", attempt, *retries)
			}
			hop := dst
			if len(attemptRoute) > 0 {
				hop = attemptRoute[0]
			}
			opts := sessionOpts()
			var (
				s2   *lsl.Session
				oerr error
			)
			if *verifyInt {
				// The whole-object digest is keyed by the session id
				// (the payload is the id-seeded pattern), so integrity
				// sends mint the id before opening. Each attempt is
				// still its own session — it restarts from byte zero,
				// so its digest covers the whole object.
				sid, merr := wire.NewSessionID()
				if merr != nil {
					return merr
				}
				opts = append(opts, wire.ContentDigestOption(depot.PatternDigest(sid, size)))
				s2, oerr = lsl.OpenAtID(dial, sid, srcEP, dst, attemptRoute, 0, opts...)
			} else {
				s2, oerr = lsl.Open(dial, srcEP, dst, attemptRoute, opts...)
			}
			if oerr != nil {
				return oerr
			}
			sess = s2
			emit0(tr, sess.ID(), obs.KindConnect, obs.Event{Peer: hop.String(), Retries: attempt})
			sampler := newSampler("send " + sess.ID().String())
			w := sendWriter(sess, sampler)
			emit0(tr, sess.ID(), obs.KindFirstByte, obs.Event{})
			written, werr := sendPattern(w, sess.ID(), size)
			if werr != nil {
				sess.Close()
				return fmt.Errorf("send after %d bytes: %w", written, werr)
			}
			sess.Close()
			emit0(tr, sess.ID(), obs.KindLastByte, obs.Event{Bytes: written})
			finishSampler(sampler, tr, start, sess.ID().String(), *src)
			return nil
		})
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("session %s: %d bytes in %v = %.2f Mbit/s (send-side)\n",
		sess.ID(), size, elapsed.Round(time.Millisecond),
		float64(size)*8/1e6/elapsed.Seconds())
	return nil
}

// cachedSessionID returns the session id a -cached send runs under:
// the -id the user carried over from a previous send of the same
// object, or a freshly minted one.
func cachedSessionID() (wire.SessionID, error) {
	var id wire.SessionID
	if *idSpec == "" {
		return wire.NewSessionID()
	}
	raw, err := hex.DecodeString(*idSpec)
	if err != nil || len(raw) != len(id) {
		return id, fmt.Errorf("-id wants a 32-hex-digit session id")
	}
	copy(id[:], raw)
	return id, nil
}

// cachedSuffixStart returns the first byte of the longest contiguous
// cached suffix that runs to exactly size, or size when the advertised
// ranges hold no such suffix. Only a suffix is spliceable: the origin
// sends [0, start) and the holder serves [start, size) after it.
func cachedSuffixStart(ranges []wire.ByteRange, size int64) int64 {
	if n := len(ranges); n > 0 && ranges[n-1].End() == size {
		return ranges[n-1].Off
	}
	return size
}

// runCachedSend is the origin-offload path: probe the route's depots
// for the object's digest, send only the cold prefix from here, and
// direct the best holder (longest cached suffix; ties to the depot
// nearest the sink) to serve the remainder out of its cache. A refused
// directive falls back to an origin send of the remainder.
func runCachedSend(dial lsl.Dialer, srcEP, dst wire.Endpoint, route []wire.Endpoint, size int64, tr obs.Sink) error {
	id, err := cachedSessionID()
	if err != nil {
		return err
	}
	digest := depot.PatternDigest(id, size)
	start := time.Now()

	holder, coldEnd := -1, size
	for i, hop := range route {
		ranges, perr := lsl.CacheProbe(dial, srcEP, hop, digest)
		if perr != nil {
			continue // no cache there, or unreachable: probe is best-effort
		}
		if c := cachedSuffixStart(ranges, size); c < size && c <= coldEnd {
			holder, coldEnd = i, c
		}
	}
	if holder >= 0 {
		log.Printf("cache: %s holds [%d,%d), sending only the first %d bytes from the origin",
			route[holder], coldEnd, size, coldEnd)
	}

	// Every session of the splice carries the digest and CRC framing:
	// the framing is what lets depots populate (and verify) their caches
	// as the cold bytes pass through.
	opts := sessionOpts()
	if !*verifyInt {
		opts = append(opts, wire.ChunkChecksumOption())
	}
	opts = append(opts, wire.ContentDigestOption(digest))

	var originBytes, cachedBytes int64
	if coldEnd > 0 {
		sess, oerr := lsl.OpenAtID(dial, id, srcEP, dst, route, 0, opts...)
		if oerr != nil {
			return oerr
		}
		emit0(tr, id, obs.KindConnect, obs.Event{Peer: route[0].String()})
		written, werr := sendPatternRange(sendWriter(sess, nil), id, 0, coldEnd)
		sess.Close()
		originBytes += written
		if werr != nil {
			return fmt.Errorf("cached send after %d bytes: %w", written, werr)
		}
	}
	if holder >= 0 && coldEnd < size {
		r := wire.ByteRange{Off: coldEnd, Len: size - coldEnd}
		sess, oerr := lsl.OpenCacheServe(dial, id, srcEP, dst, route[holder:], digest, r, opts...)
		if oerr != nil {
			log.Printf("serve directive to %s failed (%v), falling back to origin", route[holder], oerr)
		} else {
			emit0(tr, id, obs.KindConnect, obs.Event{Peer: route[holder].String(),
				Detail: fmt.Sprintf("cache serve [%d,%d)", r.Off, r.End())})
			// The holder writes nothing back on success and closes when
			// the serve is done; a directive it cannot satisfy (or a span
			// that fails its CRC mid-read) comes back as a refusal header.
			hdr, rerr := wire.ReadHeader(sess)
			sess.Close()
			if rerr != nil {
				cachedBytes = r.Len
			} else if hdr.Type == wire.TypeRefuse {
				log.Printf("holder %s refused the serve directive, falling back to origin", route[holder])
			}
		}
	}
	if total := originBytes + cachedBytes; total < size {
		sess, oerr := lsl.OpenAtID(dial, id, srcEP, dst, route, originBytes, opts...)
		if oerr != nil {
			return oerr
		}
		emit0(tr, id, obs.KindConnect, obs.Event{Peer: route[0].String(), Retries: 1})
		written, werr := sendPatternRange(sendWriter(sess, nil), id, originBytes, size)
		sess.Close()
		originBytes += written
		if werr != nil {
			return fmt.Errorf("cached send fallback after %d bytes: %w", written, werr)
		}
	}
	emit0(tr, id, obs.KindLastByte, obs.Event{Bytes: originBytes + cachedBytes})

	elapsed := time.Since(start)
	served := "all from origin"
	if cachedBytes > 0 {
		served = fmt.Sprintf("%d origin + %d served by %s", originBytes, cachedBytes, route[holder])
	}
	fmt.Printf("session %s: %d bytes in %v = %.2f Mbit/s (send-side, %s)\n",
		id, size, elapsed.Round(time.Millisecond),
		float64(size)*8/1e6/elapsed.Seconds(), served)
	if *idSpec == "" {
		fmt.Printf("repeat this object with: -cached -id %s\n", id)
	}
	return nil
}

// runTableDrivenSend pushes the object through one entry depot with no
// source route: the header names only src and dst, and each depot picks
// the next hop from its controller-pushed route table. A table miss
// anywhere on the path surfaces here as a refusal.
func runTableDrivenSend(dial lsl.Dialer, srcEP, dst, entry wire.Endpoint, size int64, tr obs.Sink) error {
	start := time.Now()
	conn, err := dial.Dial(entry.String())
	if err != nil {
		return err
	}
	sess, err := lsl.Wrap(conn, srcEP, dst, sessionOpts()...)
	if err != nil {
		return err
	}
	emit0(tr, sess.ID(), obs.KindConnect, obs.Event{Peer: entry.String()})
	sampler := newSampler("send " + sess.ID().String())
	w := sendWriter(sess, sampler)
	emit0(tr, sess.ID(), obs.KindFirstByte, obs.Event{})
	written, werr := sendPattern(w, sess.ID(), size)
	if werr != nil {
		sess.Close()
		return fmt.Errorf("table-driven send after %d bytes: %w", written, werr)
	}
	sess.Close()
	emit0(tr, sess.ID(), obs.KindLastByte, obs.Event{Bytes: written})
	finishSampler(sampler, tr, start, sess.ID().String(), *src)
	elapsed := time.Since(start)
	fmt.Printf("session %s: %d bytes in %v = %.2f Mbit/s (send-side, table-driven)\n",
		sess.ID(), size, elapsed.Round(time.Millisecond),
		float64(size)*8/1e6/elapsed.Seconds())
	return nil
}

// runStripedSend pushes the object over *stripesN parallel sublink
// chains sharing one session id. Each stripe carries a contiguous byte
// range announced through the resume-offset option, so an ordinary
// -sink reassembles by absolute offset with no striping-specific code.
// -retries applies independently per stripe: a failed stripe restarts
// from its own range start while its siblings stream on.
func runStripedSend(dial lsl.Dialer, srcEP, dst wire.Endpoint, route []wire.Endpoint, firstHop wire.Endpoint, size int64, tr obs.Sink) error {
	n := *stripesN
	if int64(n) > size {
		n = int(size)
	}
	id, err := wire.NewSessionID()
	if err != nil {
		return err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	base, rem := size/int64(n), size%int64(n)
	var from int64
	for k := 0; k < n; k++ {
		length := base
		if int64(k) < rem {
			length++
		}
		wg.Add(1)
		go func(k int, from, end int64) {
			defer wg.Done()
			pol := retry.Policy{MaxAttempts: *retries + 1, BaseDelay: *backoff}
			errs[k] = pol.Do(context.Background(), func(attempt int) error {
				if attempt > 0 {
					log.Printf("stripe %d: retry %d of %d", k, attempt, *retries)
				}
				sess, oerr := lsl.OpenStripe(dial, srcEP, dst, route, id, k, n, from, sessionOpts()...)
				if oerr != nil {
					return oerr
				}
				emit0(tr, id, obs.KindConnect, obs.Event{Peer: firstHop.String(), Stripe: obs.StripeOf(k), Retries: attempt})
				written, werr := sendPatternRange(sendWriter(sess, nil), id, from, end)
				sess.Close()
				if werr != nil {
					return fmt.Errorf("stripe %d after %d bytes: %w", k, written, werr)
				}
				emit0(tr, id, obs.KindLastByte, obs.Event{Bytes: written, Stripe: obs.StripeOf(k)})
				return nil
			})
		}(k, from, from+length)
		from += length
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return werr
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("session %s: %d bytes over %d stripes in %v = %.2f Mbit/s (send-side)\n",
		id, size, n, elapsed.Round(time.Millisecond),
		float64(size)*8/1e6/elapsed.Seconds())
	return nil
}

// exclusiveModes lists the mutually exclusive send-mode flags an
// invocation enabled. Each mode owns the whole session layout — how
// ranges, routes, and session ids map onto connections — so at most
// one may be active per send; the caller rejects longer lists with a
// usage error.
func exclusiveModes(cached, tableDriven, store, generate bool, stripes, multipath int) []string {
	var modes []string
	if cached {
		modes = append(modes, "-cached")
	}
	if tableDriven {
		modes = append(modes, "-table-driven")
	}
	if store {
		modes = append(modes, "-store")
	}
	if generate {
		modes = append(modes, "-generate")
	}
	if stripes > 1 {
		modes = append(modes, "-stripes")
	}
	if multipath > 0 {
		modes = append(modes, "-multipath")
	}
	return modes
}

// parseMultipathRoutes splits a -multipath send's -via into its
// ';'-separated depot routes, each group a comma-separated chain. An
// empty group is the direct path: the route dials -to with no depots.
func parseMultipathRoutes(via string) ([][]wire.Endpoint, error) {
	groups := strings.Split(via, ";")
	routes := make([][]wire.Endpoint, 0, len(groups))
	for _, g := range groups {
		var route []wire.Endpoint
		for _, hop := range strings.Split(g, ",") {
			hop = strings.TrimSpace(hop)
			if hop == "" {
				continue
			}
			ep, err := wire.ParseEndpoint(hop)
			if err != nil {
				return nil, err
			}
			route = append(route, ep)
		}
		routes = append(routes, route)
	}
	return routes, nil
}

// multipathRange is one contiguous chunk of a -multipath send's shared
// work list.
type multipathRange struct{ from, end int64 }

// multipathSendRanges splits size bytes into the chunk ranges the
// route workers pull: several per route so the load can rebalance, but
// never below 64 KiB per range (tinier ranges spend more time in
// session setup than in transfer) and never fewer ranges than routes
// unless the object itself is smaller.
func multipathSendRanges(size int64, k int) []multipathRange {
	const perRoute, minRange = 4, int64(64 << 10)
	n := k * perRoute
	if int64(n)*minRange > size {
		n = int(size / minRange)
	}
	if n < k {
		n = k
	}
	if int64(n) > size {
		n = int(size)
	}
	ranges := make([]multipathRange, 0, n)
	base, rem := size/int64(n), size%int64(n)
	var from int64
	for i := 0; i < n; i++ {
		length := base
		if int64(i) < rem {
			length++
		}
		ranges = append(ranges, multipathRange{from: from, end: from + length})
		from += length
	}
	return ranges
}

// runMultipathSend fans the object across the parsed disjoint depot
// routes. Every route session shares one session id and a path-set
// identifier; each route worker pulls the next chunk range off the
// shared list as soon as its previous write drains, so TCP
// back-pressure self-clocks the routes — a faster route carries more
// ranges. -retries applies per range on its owning route; a range that
// exhausts its attempts fails the whole send.
func runMultipathSend(dial lsl.Dialer, srcEP, dst wire.Endpoint, routes [][]wire.Endpoint, size int64, tr obs.Sink) error {
	k := len(routes)
	id, err := wire.NewSessionID()
	if err != nil {
		return err
	}
	set, err := wire.NewSessionID()
	if err != nil {
		return err
	}
	ranges := multipathSendRanges(size, k)
	start := time.Now()
	var mu sync.Mutex
	next := 0
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(ranges) {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	carried := make([]int64, k)
	for w := range routes {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			firstHop := dst
			if len(routes[w]) > 0 {
				firstHop = routes[w][0]
			}
			for {
				i, ok := claim()
				if !ok {
					return
				}
				r := ranges[i]
				pol := retry.Policy{MaxAttempts: *retries + 1, BaseDelay: *backoff}
				errs[w] = pol.Do(context.Background(), func(attempt int) error {
					if attempt > 0 {
						log.Printf("path %d: range %d retry %d of %d", w, i, attempt, *retries)
					}
					sess, oerr := lsl.OpenPath(dial, srcEP, dst, routes[w], id, set, w, k, r.from, sessionOpts()...)
					if oerr != nil {
						return oerr
					}
					emit0(tr, id, obs.KindConnect, obs.Event{Peer: firstHop.String(), Path: obs.PathOf(w), Retries: attempt})
					written, werr := sendPatternRange(sendWriter(sess, nil), id, r.from, r.end)
					sess.Close()
					if werr != nil {
						return fmt.Errorf("path %d range %d after %d bytes: %w", w, i, written, werr)
					}
					emit0(tr, id, obs.KindLastByte, obs.Event{Bytes: written, Path: obs.PathOf(w)})
					carried[w] += written
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return werr
		}
	}
	elapsed := time.Since(start)
	shares := make([]string, k)
	for w := range carried {
		shares[w] = fmt.Sprintf("path %d: %d", w, carried[w])
	}
	fmt.Printf("session %s: %d bytes over %d disjoint routes in %v = %.2f Mbit/s (send-side; %s)\n",
		id, size, k, elapsed.Round(time.Millisecond),
		float64(size)*8/1e6/elapsed.Seconds(), strings.Join(shares, ", "))
	return nil
}

// sendPatternRange streams the deterministic pattern for absolute
// object offsets [from, end) — one stripe's share.
func sendPatternRange(w io.Writer, id wire.SessionID, from, end int64) (int64, error) {
	buf := make([]byte, 64<<10)
	written := from
	for written < end {
		n := int64(len(buf))
		if remaining := end - written; remaining < n {
			n = remaining
		}
		depot.FillPattern(buf[:n], id, written)
		m, werr := w.Write(buf[:n])
		written += int64(m)
		if werr != nil {
			return written - from, werr
		}
	}
	return written - from, nil
}

func runSink() error {
	if *selfAddr == "" {
		fmt.Fprintln(os.Stderr, "lsl-xfer: -sink requires -self")
		flag.Usage()
		os.Exit(2)
	}
	self, err := wire.ParseEndpoint(*selfAddr)
	if err != nil {
		return err
	}
	tr, closeTrace, err := openTrace()
	if err != nil {
		return err
	}
	defer closeTrace()
	srv, err := depot.New(depot.Config{
		Self: self,
		Dial: lsl.DialerFunc(func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}),
		Trace: tr,
		Local: func(s *lsl.Session) error {
			start := time.Now()
			buf := make([]byte, 64<<10)
			// A resumed session's pattern continues at its carried
			// offset rather than restarting at zero.
			base := s.Header.ResumeOffset()
			// The sink honors whatever integrity options the header
			// carries: checksummed sessions are unframed (a chunk
			// damaged on the final hop fails here, not silently), and a
			// whole-object digest is checked once the last byte lands.
			// Striped or resumed sessions skip the digest — their
			// ranges do not cover the object from byte zero.
			var in io.Reader = s
			if s.Header.Checksummed() {
				in = wire.NewFrameReader(s)
			}
			want, haveDigest := s.Header.ContentDigest()
			haveDigest = haveDigest && s.Header.StripeCount() <= 1 && base == 0
			var dg hash.Hash
			if haveDigest {
				dg = sha256.New()
			}
			var total int64
			var verr error
			for {
				n, rerr := in.Read(buf)
				if n > 0 {
					if verr == nil {
						verr = depot.VerifyPattern(buf[:n], s.ID(), base+total)
						if verr == nil && dg != nil {
							dg.Write(buf[:n])
						}
					}
					total += int64(n)
				}
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					verr = rerr
					break
				}
			}
			status := "OK"
			if verr == nil && dg != nil && total == want.Size {
				var sum [sha256.Size]byte
				dg.Sum(sum[:0])
				if sum != want.Sum {
					verr = fmt.Errorf("%w: object sha256 differs from sender digest over %d bytes", wire.ErrDigest, want.Size)
				} else {
					status = "OK, sha256 verified"
				}
			}
			elapsed := time.Since(start)
			if verr != nil {
				status = verr.Error()
			}
			log.Printf("session %s from %s: %d bytes in %v = %.2f Mbit/s [%s]",
				s.ID(), s.Header.Src, total, elapsed.Round(time.Millisecond),
				float64(total)*8/1e6/elapsed.Seconds(), status)
			return verr
		},
		Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("sink %s listening on %s", self, *listen)
	return srv.Serve(ln)
}
