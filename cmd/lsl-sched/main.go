// Command lsl-sched computes Minimax-Path forwarding schedules from a
// bandwidth measurement file.
//
// The input is a text file with one measurement per line:
//
//	<source-host> <dest-host> <bandwidth-bytes-per-sec>
//
// Blank lines and lines starting with '#' are ignored. Repeated
// measurements of a pair are averaged (the NWS forecast stand-in).
//
// Usage:
//
//	lsl-sched -matrix m.txt -root host-a            # tree + route table
//	lsl-sched -matrix m.txt -all                    # every route table
//	lsl-sched -matrix m.txt -path host-a,host-b     # one planned path
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/netlogistics/lsl/internal/graph"
)

var (
	matrixPath = flag.String("matrix", "", "measurement file (required)")
	epsilon    = flag.Float64("epsilon", 0.1, "edge-equivalence ε")
	root       = flag.String("root", "", "print the MMP tree and route table for this host")
	all        = flag.Bool("all", false, "print route tables for every host")
	pathSpec   = flag.String("path", "", "print the planned path for 'src,dst'")
	dot        = flag.Bool("dot", false, "with -root: emit the tree as Graphviz dot instead of text")
)

func main() {
	flag.Parse()
	if *matrixPath == "" {
		fmt.Fprintln(os.Stderr, "lsl-sched: -matrix is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lsl-sched:", err)
		os.Exit(1)
	}
}

func run() error {
	g, err := loadMatrix(*matrixPath)
	if err != nil {
		return err
	}
	plan := graph.BuildRoutePlan(g, *epsilon)
	fmt.Printf("%d hosts, epsilon=%.2f, depot routes on %.1f%% of paths\n\n",
		g.N(), *epsilon, 100*plan.RelayedFraction())

	did := false
	if *root != "" {
		id, ok := g.Lookup(*root)
		if !ok {
			return fmt.Errorf("unknown host %q", *root)
		}
		if *dot {
			fmt.Print(plan.Trees[id].DOT("mmp_" + *root))
		} else {
			fmt.Printf("MMP tree from %s:\n%s\n", *root, plan.Trees[id])
			fmt.Println(plan.FormatTable(id))
		}
		did = true
	}
	if *all {
		for v := 0; v < g.N(); v++ {
			fmt.Println(plan.FormatTable(graph.NodeID(v)))
		}
		did = true
	}
	if *pathSpec != "" {
		parts := strings.SplitN(*pathSpec, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-path wants 'src,dst', got %q", *pathSpec)
		}
		s, ok := g.Lookup(strings.TrimSpace(parts[0]))
		if !ok {
			return fmt.Errorf("unknown host %q", parts[0])
		}
		d, ok := g.Lookup(strings.TrimSpace(parts[1]))
		if !ok {
			return fmt.Errorf("unknown host %q", parts[1])
		}
		nodes := plan.SourcePath(s, d)
		if nodes == nil {
			return fmt.Errorf("no path from %s to %s", parts[0], parts[1])
		}
		names := make([]string, len(nodes))
		for i, v := range nodes {
			names[i] = g.Name(v)
		}
		cost, err := g.PathCost(nodes)
		if err != nil {
			return err
		}
		fmt.Printf("path: %s (minimax cost %.4g)\n", strings.Join(names, " -> "), cost)
		did = true
	}
	if !did {
		fmt.Println("nothing to do: pass -root, -all, or -path")
	}
	return nil
}

// loadMatrix parses the measurement file into a cost graph
// (cost = 1/mean bandwidth).
func loadMatrix(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type pair struct{ a, b string }
	sums := make(map[pair]float64)
	counts := make(map[pair]int)
	hostSet := make(map[string]bool)

	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'src dst bw', got %q", path, lineNo, line)
		}
		bw, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || bw <= 0 {
			return nil, fmt.Errorf("%s:%d: bad bandwidth %q", path, lineNo, fields[2])
		}
		if fields[0] == fields[1] {
			return nil, fmt.Errorf("%s:%d: self measurement for %q", path, lineNo, fields[0])
		}
		hostSet[fields[0]] = true
		hostSet[fields[1]] = true
		k := pair{fields[0], fields[1]}
		sums[k] += bw
		counts[k]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(hostSet) < 2 {
		return nil, fmt.Errorf("%s: need measurements between at least 2 hosts", path)
	}

	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	g, err := graph.New(hosts)
	if err != nil {
		return nil, err
	}
	for k, sum := range sums {
		a, _ := g.Lookup(k.a)
		b, _ := g.Lookup(k.b)
		g.SetCost(a, b, float64(counts[k])/sum) // 1 / mean bandwidth
	}
	return g, nil
}
