package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/netlogistics/lsl/internal/graph"
)

func writeMatrix(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "matrix.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadMatrix(t *testing.T) {
	path := writeMatrix(t, `
# comment line
hostA hostB 1000000
hostB hostA 2000000
hostA hostB 3000000
hostB hostC 500000
`)
	g, err := loadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("hosts = %d", g.N())
	}
	a, _ := g.Lookup("hostA")
	b, _ := g.Lookup("hostB")
	c, _ := g.Lookup("hostC")
	// Duplicates average: mean(1e6, 3e6) = 2e6 → cost 5e-7.
	if got := g.Cost(a, b); got != 1/2e6 {
		t.Fatalf("cost A→B = %v", got)
	}
	if got := g.Cost(b, a); got != 1/2e6 {
		t.Fatalf("cost B→A = %v", got)
	}
	if got := g.Cost(b, c); got != 1/5e5 {
		t.Fatalf("cost B→C = %v", got)
	}
	// Unmeasured direction has no edge.
	if g.HasEdge(c, b) {
		t.Fatal("unmeasured direction got an edge")
	}
	// The loaded graph schedules.
	tree := graph.MinimaxTree(g, a, 0.1)
	if !tree.Reachable(c) {
		t.Fatal("C unreachable from A via B")
	}
}

func TestLoadMatrixErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"malformed", "a b\n"},
		{"bad bandwidth", "a b notanumber\n"},
		{"negative bandwidth", "a b -5\n"},
		{"self measurement", "a a 100\n"},
		{"too few hosts", "# nothing\n"},
	}
	for _, c := range cases {
		path := writeMatrix(t, c.content)
		if _, err := loadMatrix(path); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := loadMatrix("/does/not/exist"); err == nil {
		t.Error("missing file accepted")
	}
}
