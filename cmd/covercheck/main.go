// Command covercheck enforces per-package statement-coverage floors
// over a go test -coverprofile file. It exists so CI fails when a
// change erodes test coverage of the packages the repo has declared
// load-bearing (the wire format and the depot cache), without chasing
// a repo-wide number that churns with every experiment harness tweak.
//
// Usage:
//
//	go test -coverprofile cover.out ./internal/wire/ ./internal/cache/
//	covercheck -profile cover.out -floors coverage-floors.txt
//
// The floors file has one package per line — import path, then the
// minimum statement coverage percentage — with #-comments and blank
// lines ignored:
//
//	github.com/netlogistics/lsl/internal/wire  90.0
//	github.com/netlogistics/lsl/internal/cache 80.0
//
// A floored package that is missing from the profile entirely is a
// failure too: "we stopped measuring it" must not read as "it passed".
// Raising a floor after coverage improves is encouraged; lowering one
// is a reviewed change to a checked-in file, which is the point.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

var (
	profilePath = flag.String("profile", "cover.out", "coverage profile written by go test -coverprofile")
	floorsPath  = flag.String("floors", "coverage-floors.txt", "per-package coverage floors file")
)

// block is one profile entry's identity: a source range in one file.
// Profiles can repeat a block (e.g. merged runs); keying on the range
// dedupes them, keeping the highest observed count.
type block struct {
	file string
	pos  string
}

// pkgCover accumulates statement totals for one package.
type pkgCover struct {
	total   int
	covered int
}

func (p pkgCover) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	floors, err := parseFloors(*floorsPath)
	if err != nil {
		return err
	}
	if len(floors) == 0 {
		return fmt.Errorf("%s declares no floors", *floorsPath)
	}
	cover, err := parseProfile(*profilePath)
	if err != nil {
		return err
	}

	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failed := false
	for _, pkg := range pkgs {
		floor := floors[pkg]
		pc, ok := cover[pkg]
		if !ok {
			failed = true
			fmt.Printf("FAIL %s: not in %s (floor %.1f%%) — was it dropped from the cover run?\n",
				pkg, *profilePath, floor)
			continue
		}
		got := pc.percent()
		if got < floor {
			failed = true
			fmt.Printf("FAIL %s: %.1f%% statement coverage, floor %.1f%%\n", pkg, got, floor)
			continue
		}
		fmt.Printf("ok   %s: %.1f%% statement coverage (floor %.1f%%)\n", pkg, got, floor)
	}
	if failed {
		return fmt.Errorf("coverage below checked-in floors")
	}
	return nil
}

// parseFloors reads the floors file: "import/path minimum-percent" per
// line, #-comments and blanks skipped.
func parseFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'package floor', got %q", path, lineNo, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || v < 0 || v > 100 {
			return nil, fmt.Errorf("%s:%d: bad floor %q", path, lineNo, fields[1])
		}
		floors[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return floors, nil
}

// parseProfile reads a go test -coverprofile file and aggregates
// statement coverage per package (the directory of each entry's file).
func parseProfile(path string) (map[string]pkgCover, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	counts := make(map[block]struct {
		stmts int
		count int
	})
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts count
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: malformed entry %q", path, lineNo, line)
		}
		rest := strings.Fields(line[colon+1:])
		if len(rest) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed entry %q", path, lineNo, line)
		}
		stmts, err1 := strconv.Atoi(rest[1])
		count, err2 := strconv.Atoi(rest[2])
		if err1 != nil || err2 != nil || stmts < 0 || count < 0 {
			return nil, fmt.Errorf("%s:%d: malformed entry %q", path, lineNo, line)
		}
		b := block{file: line[:colon], pos: rest[0]}
		c := counts[b]
		c.stmts = stmts
		if count > c.count {
			c.count = count
		}
		counts[b] = c
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	cover := make(map[string]pkgCover)
	for b, c := range counts {
		pkg := path2pkg(b.file)
		pc := cover[pkg]
		pc.total += c.stmts
		if c.count > 0 {
			pc.covered += c.stmts
		}
		cover[pkg] = pc
	}
	return cover, nil
}

// path2pkg maps a profile file path to its package import path.
func path2pkg(file string) string {
	return path.Dir(file)
}
