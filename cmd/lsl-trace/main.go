// Command lsl-trace renders end-to-end transfer timelines from LSL
// trace events — the Figure 4/5 analysis of the paper, computed from
// the stack's own distributed tracing instead of tcpdump.
//
// Events come from JSON-lines trace files (lsl-xfer/lsl-depot
// -trace-out) or from a running trace collector (lsl-ctl -collect, or
// lsl-trace -serve). Every event of one logical transfer shares the
// trace id its initiator minted, so the timeline survives retries,
// failover reroutes, and striping: the rendered chart shows each hop
// of each stripe as one bar, and how much each hop's streaming window
// overlaps its upstream hop — the cut-through pipelining the paper's
// sequence plots make visible as parallel slopes.
//
// Usage:
//
//	lsl-trace [-trace id] file.jsonl...        render from trace files
//	lsl-trace -from http://host:7502 [-trace id]
//	                                           fetch from a collector
//	lsl-trace -serve 127.0.0.1:7510            run a standalone collector
//
// Without -trace, the traces found are listed; with exactly one trace
// in the input it is rendered directly. With -serve, lsl-trace runs
// the collector HTTP endpoint itself (POST /traces/ingest, GET
// /traces, GET /traces/{id}) until interrupted — the standalone
// alternative to hosting the collector inside lsl-ctl.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/netlogistics/lsl/internal/obs"
)

var (
	fromURL  = flag.String("from", "", "fetch traces from this collector base URL (e.g. http://host:7502)")
	traceID  = flag.String("trace", "", "render this trace id (default: list, or render the only trace)")
	serveOn  = flag.String("serve", "", "run a standalone trace collector on this ip:port")
	barWidth = flag.Int("width", 64, "timeline bar width in columns")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		log.Fatalf("lsl-trace: %v", err)
	}
}

func run() error {
	if *serveOn != "" {
		return serve(*serveOn)
	}
	if *fromURL != "" {
		return fromCollector(*fromURL, *traceID)
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "lsl-trace: need trace files, -from, or -serve")
		flag.Usage()
		os.Exit(2)
	}
	return fromFiles(flag.Args(), *traceID)
}

// serve runs a standalone collector with the full debug handler.
func serve(addr string) error {
	reg := obs.NewRegistry()
	col := obs.NewCollector(0).CountDrops(reg.Counter(obs.MetricTraceDrops))
	defer col.Close()
	log.Printf("trace collector on http://%s (POST /traces/ingest, GET /traces)", addr)
	return http.ListenAndServe(addr, obs.NewHandler(obs.HandlerConfig{
		Registry:  reg,
		Collector: col,
	}))
}

// fromFiles ingests JSONL trace files into an in-process collector and
// renders from it.
func fromFiles(paths []string, id string) error {
	col := obs.NewCollector(0)
	defer col.Close()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		n, err := col.Ingest(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "lsl-trace: %s: no events\n", p)
		}
	}
	col.Sync()
	return render(os.Stdout, col.Summaries(), id, func(tid string) (obs.TraceTimeline, bool) {
		return col.Timeline(tid)
	})
}

// fromCollector fetches summaries and timelines over HTTP.
func fromCollector(base, id string) error {
	base = strings.TrimRight(base, "/")
	var sums []obs.TraceSummary
	if err := getJSON(base+"/traces", &sums); err != nil {
		return err
	}
	return render(os.Stdout, sums, id, func(tid string) (obs.TraceTimeline, bool) {
		var tl obs.TraceTimeline
		if err := getJSON(base+"/traces/"+tid, &tl); err != nil {
			return obs.TraceTimeline{}, false
		}
		return tl, true
	})
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render lists traces, or renders one when selected (explicitly, or
// implicitly when the input holds exactly one).
func render(w io.Writer, sums []obs.TraceSummary, id string, timeline func(string) (obs.TraceTimeline, bool)) error {
	if id == "" {
		if len(sums) == 1 {
			id = sums[0].Trace
		} else {
			if len(sums) == 0 {
				fmt.Fprintln(w, "no traces")
				return nil
			}
			renderList(w, sums)
			return nil
		}
	}
	tl, ok := timeline(id)
	if !ok {
		return fmt.Errorf("trace %s not found", id)
	}
	renderTimeline(w, tl, *barWidth)
	return nil
}

// renderList prints the trace summary table.
func renderList(w io.Writer, sums []obs.TraceSummary) {
	fmt.Fprintf(w, "%-34s %8s %5s %5s %7s %5s %12s %10s %s\n",
		"TRACE", "EVENTS", "HOPS", "SESS", "STRIPES", "PATHS", "BYTES", "DURATION", "RECOVERY")
	for _, s := range sums {
		rec := "-"
		if s.Retries+s.Failovers+s.Errors > 0 {
			rec = fmt.Sprintf("%d retries, %d failovers, %d errors", s.Retries, s.Failovers, s.Errors)
		}
		fmt.Fprintf(w, "%-34s %8d %5d %5d %7d %5d %12d %10s %s\n",
			s.Trace, s.Events, s.Hops, s.Sessions, s.Stripes, s.Paths, s.Bytes,
			fmtDur(s.End.Sub(s.Start)), rec)
	}
}

// renderTimeline draws the Figure 4/5-style hop-pipelining chart and
// the per-hop critical-path table for one trace.
func renderTimeline(w io.Writer, tl obs.TraceTimeline, width int) {
	if width < 16 {
		width = 16
	}
	s := tl.Summary
	fmt.Fprintf(w, "trace %s: %d hops", s.Trace, s.Hops+1)
	if s.Stripes > 0 {
		fmt.Fprintf(w, ", %d stripes", s.Stripes)
	}
	if s.Paths > 0 {
		fmt.Fprintf(w, ", %d paths", s.Paths)
	}
	if s.Sessions > 1 {
		fmt.Fprintf(w, ", %d sessions", s.Sessions)
	}
	fmt.Fprintf(w, ", %d bytes in %s", s.Bytes, fmtDur(s.End.Sub(s.Start)))
	if s.Retries+s.Failovers > 0 {
		fmt.Fprintf(w, " (%d retries, %d failovers)", s.Retries, s.Failovers)
	}
	fmt.Fprintln(w)

	spans := tl.Spans
	if len(spans) == 0 {
		fmt.Fprintln(w, "no spans (trace carries no lifecycle events)")
		return
	}

	// One shared time axis over every span's extent.
	t0, t1 := s.Start, s.End
	if !t1.After(t0) {
		t1 = t0.Add(time.Millisecond)
	}
	scale := func(t time.Time) int {
		c := int(float64(width-1) * float64(t.Sub(t0)) / float64(t1.Sub(t0)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	fmt.Fprintf(w, "\n%-4s %-4s %-7s %-10s %-*s %8s\n", "HOP", "PATH", "STRIPE", "SESSION", width, "TIMELINE ('·' waiting, '█' streaming)", "OVERLAP")
	for _, sp := range spans {
		bar := []rune(strings.Repeat(" ", width))
		open := firstSet(sp.Accept, sp.Connect, sp.First)
		end := lastSet(sp.Deliver, sp.Last, sp.First, sp.Connect, sp.Accept)
		if !open.IsZero() && !end.IsZero() {
			for c := scale(open); c <= scale(end); c++ {
				bar[c] = '·'
			}
		}
		if !sp.First.IsZero() && !sp.Last.IsZero() {
			for c := scale(sp.First); c <= scale(sp.Last); c++ {
				bar[c] = '█'
			}
		}
		ov := "-"
		if sp.Hop > 0 && sp.Overlap > 0 {
			ov = fmt.Sprintf("%3.0f%%", sp.Overlap*100)
		}
		fmt.Fprintf(w, "%-4d %-4s %-7s %-10s %s %8s\n",
			sp.Hop, stripeLabel(sp.Path), stripeLabel(sp.Stripe), short(sp.Session, 10), string(bar), ov)
	}

	// Critical-path table: where did the wall-clock go, per sublink. The
	// slowest streaming window — the hop that bounds end-to-end time
	// under pipelining — is starred.
	var slowest time.Duration
	for _, sp := range spans {
		if d := sp.Streaming(); d > slowest {
			slowest = d
		}
	}
	fmt.Fprintf(w, "\n%-4s %-4s %-7s %-10s %10s %10s %10s %12s %8s %7s\n",
		"HOP", "PATH", "STRIPE", "SESSION", "DIAL", "FIRSTBYTE", "STREAM", "BYTES", "MBPS", "RETRIES")
	for _, sp := range spans {
		dial := gap(sp.Accept, sp.Connect)
		if sp.Hop == 0 {
			dial = "-"
		}
		stream := sp.Streaming()
		mark := " "
		if stream > 0 && stream == slowest {
			mark = "*"
		}
		mbps := "-"
		if stream > 0 && sp.Bytes > 0 {
			mbps = fmt.Sprintf("%.1f", float64(sp.Bytes)*8/1e6/stream.Seconds())
		}
		fmt.Fprintf(w, "%-4d %-4s %-7s %-10s %10s %10s %9s%s %12d %8s %7d\n",
			sp.Hop, stripeLabel(sp.Path), stripeLabel(sp.Stripe), short(sp.Session, 10),
			dial, gap(sp.Connect, sp.First), fmtDur(stream), mark, sp.Bytes, mbps, sp.Retries)
	}
	if slowest > 0 {
		fmt.Fprintln(w, "\n* critical path: the slowest streaming window bounds the pipelined transfer")
	}
}

// stripeLabel renders a stripe pointer for a table cell.
func stripeLabel(p *int) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%d", *p)
}

// short truncates an id for a fixed-width column.
func short(s string, n int) string {
	if s == "" {
		return "-"
	}
	if len(s) > n {
		return s[:n]
	}
	return s
}

// gap renders the duration between two lifecycle instants, "-" when
// either is missing.
func gap(a, b time.Time) string {
	if a.IsZero() || b.IsZero() || b.Before(a) {
		return "-"
	}
	return fmtDur(b.Sub(a))
}

// fmtDur renders a duration at millisecond-ish precision.
func fmtDur(d time.Duration) string {
	if d <= 0 {
		return "0s"
	}
	return d.Round(100 * time.Microsecond).String()
}

// firstSet returns the earliest non-zero time of its arguments.
func firstSet(ts ...time.Time) time.Time {
	var out time.Time
	for _, t := range ts {
		if t.IsZero() {
			continue
		}
		if out.IsZero() || t.Before(out) {
			out = t
		}
	}
	return out
}

// lastSet returns the latest non-zero time of its arguments.
func lastSet(ts ...time.Time) time.Time {
	var out time.Time
	for _, t := range ts {
		if t.After(out) {
			out = t
		}
	}
	return out
}
