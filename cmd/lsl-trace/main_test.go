package main

import (
	"strings"
	"testing"
	"time"

	"github.com/netlogistics/lsl/internal/obs"
)

// failoverTimeline builds a realistic assembled trace: a 2-stripe,
// 2-hop transfer whose stripe 1 dies, retries, and continues through a
// rerouted depot under the same trace id.
func failoverTimeline(t *testing.T) obs.TraceTimeline {
	t.Helper()
	base := time.Date(2004, 11, 6, 12, 0, 0, 0, time.UTC)
	sec := func(n int) time.Time { return base.Add(time.Duration(n) * time.Second) }
	tid := "cafe0123cafe0123cafe0123cafe0123"
	ev := func(n int, sess string, hop int, kind string, stripe int, bytes int64, node string) obs.Event {
		return obs.Event{
			Time: sec(n), Trace: tid, Session: sess, Hop: hop, Kind: kind,
			Stripe: obs.StripeOf(stripe), Bytes: bytes, Node: node,
		}
	}
	events := []obs.Event{
		// Stripe 0 sails through relay-a.
		ev(0, "s1", 0, obs.KindConnect, 0, 0, "src"),
		ev(1, "s1", 0, obs.KindFirstByte, 0, 0, "src"),
		ev(8, "s1", 0, obs.KindLastByte, 0, 64<<10, "src"),
		ev(1, "s1", 1, obs.KindAccept, 0, 0, "relay-a"),
		ev(2, "s1", 1, obs.KindFirstByte, 0, 0, "relay-a"),
		ev(9, "s1", 1, obs.KindLastByte, 0, 64<<10, "relay-a"),
		ev(9, "s1", 1, obs.KindDeliver, 0, 64<<10, "relay-a"),
		// Stripe 1 dies, retries, and reroutes through the spare depot.
		ev(0, "s1", 0, obs.KindConnect, 1, 0, "src"),
		ev(3, "s1", 0, obs.KindRetry, 1, 32<<10, "src"),
		{Time: sec(4), Trace: tid, Session: "s1", Hop: 0, Kind: obs.KindFailover, Node: "src", Detail: "avoiding relay-a"},
		ev(5, "s1", 0, obs.KindConnect, 1, 0, "src"),
		ev(6, "s1", 0, obs.KindFirstByte, 1, 0, "src"),
		ev(12, "s1", 0, obs.KindLastByte, 1, 64<<10, "src"),
		ev(6, "s1", 2, obs.KindAccept, 1, 0, "spare"),
		ev(7, "s1", 2, obs.KindFirstByte, 1, 0, "spare"),
		ev(13, "s1", 2, obs.KindLastByte, 1, 64<<10, "spare"),
		ev(13, "s1", 2, obs.KindResume, 1, 32<<10, "spare"),
	}
	col := obs.NewCollector(0)
	defer col.Close()
	for _, e := range events {
		col.Emit(e)
	}
	col.Sync()
	tl, ok := col.Timeline(tid)
	if !ok {
		t.Fatal("collector lost the trace")
	}
	return tl
}

func TestRenderTimeline(t *testing.T) {
	tl := failoverTimeline(t)
	var sb strings.Builder
	renderTimeline(&sb, tl, 48)
	out := sb.String()

	if !strings.Contains(out, "trace cafe0123cafe0123cafe0123cafe0123") {
		t.Fatalf("missing trace header:\n%s", out)
	}
	if !strings.Contains(out, "2 stripes") || !strings.Contains(out, "1 retries, 1 failovers") {
		t.Fatalf("summary line incomplete:\n%s", out)
	}
	for _, want := range []string{"TIMELINE", "OVERLAP", "█", "DIAL", "FIRSTBYTE", "STREAM", "critical path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Both stripes must appear as rows, including the rerouted hop 2
	// (single-path, so the PATH column shows "-").
	if !strings.Contains(out, "\n2    -    1") {
		t.Fatalf("rerouted continuation (hop 2, stripe 1) not rendered:\n%s", out)
	}
	// Pipelined hop 1 overlaps its upstream; the percentage must show.
	if !strings.Contains(out, "%") {
		t.Fatalf("no overlap percentage rendered:\n%s", out)
	}
}

func TestRenderListAndSelection(t *testing.T) {
	tl := failoverTimeline(t)
	sums := []obs.TraceSummary{tl.Summary, {Trace: "other", Events: 1}}
	var sb strings.Builder
	if err := render(&sb, sums, "", func(string) (obs.TraceTimeline, bool) {
		t.Fatal("list mode must not fetch a timeline")
		return obs.TraceTimeline{}, false
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TRACE") || !strings.Contains(sb.String(), "other") {
		t.Fatalf("list output:\n%s", sb.String())
	}

	// A single trace renders implicitly.
	sb.Reset()
	if err := render(&sb, sums[:1], "", func(id string) (obs.TraceTimeline, bool) {
		return tl, id == tl.Summary.Trace
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TIMELINE") {
		t.Fatalf("single trace not auto-rendered:\n%s", sb.String())
	}

	if err := render(&sb, sums, "missing", func(string) (obs.TraceTimeline, bool) {
		return obs.TraceTimeline{}, false
	}); err == nil {
		t.Fatal("missing trace id did not error")
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := render(&sb, nil, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no traces") {
		t.Fatalf("empty output: %q", sb.String())
	}
}
