// Command lsl-exp regenerates the paper's tables and figures and the
// repository's ablation studies.
//
// Usage:
//
//	lsl-exp [flags] <experiment>
//
// Experiments:
//
//	rtts      Section 3 RTT table
//	fig2      Figure 2: direct vs LSL bandwidth, UCSB→UIUC
//	fig3      Figure 3: direct vs LSL bandwidth, UCSB→UF
//	fig4      Figure 4: sequence traces via Houston
//	fig5      Figure 5: sequence traces via Denver (32 MB knee)
//	trees     Figures 6-8: MMP trees with and without ε
//	fig9      Figures 9-10 + percentile table + 26% statistic
//	fig11     Figure 11: core-depot box statistics
//	striping  parallel-sublink throughput sweep (1..N stripes)
//	multipath one transfer fanned across edge-disjoint depot routes
//	fairness  weighted fair-sharing split through one scheduled depot
//	loadgen   mesh load/soak harness: concurrent mixed-weight sessions
//	integrity corruption inject-and-recover acceptance sweep
//	ablate    all ablation sweeps (ε, buffer, loss, freshness, baseline)
//	all       everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/netlogistics/lsl/internal/experiments"
	"github.com/netlogistics/lsl/internal/workload"
)

var (
	seed         = flag.Int64("seed", 1, "random seed for every experiment")
	iterations   = flag.Int("iterations", 10, "runs per configuration for the Section 3 figures (paper: 10)")
	measurements = flag.Int("measurements", 20000, "measurement budget for the aggregate evaluation (paper: 362,895)")
	epsilon      = flag.Float64("epsilon", 0.1, "edge-equivalence for the tree comparison")
	stripes      = flag.Int("stripes", 8, "largest stripe count for the striping sweep (doubling from 1)")
	paths        = flag.Int("paths", 2, "largest route count for the multipath sweep (1..N)")
	format       = flag.String("format", "table", "output format for figures: table or csv")
	sessions     = flag.Int("sessions", 0, "session count for fairness/loadgen (0 = experiment default)")
	arrival      = flag.String("arrival", "", "loadgen arrival process: poisson:<rate/s>, uniform:<gap>, burst:<n>:<gap>, or empty for all-at-once")
	reliable     = flag.Bool("reliable", false, "loadgen soak mode: route transfers through retry + failover")
	maxSessions  = flag.Int("max-sessions", 32, "loadgen per-depot concurrent session cap (0 = unlimited)")
	queueDepth   = flag.Int("queue-depth", 64, "loadgen per-depot admission queue depth")
)

// parseArrival decodes the -arrival flag.
func parseArrival(s string) (workload.ArrivalProcess, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "poisson":
		if len(parts) != 2 {
			return nil, fmt.Errorf("arrival: want poisson:<rate/s>")
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("arrival: %w", err)
		}
		return workload.PoissonArrivals{Rate: rate}, nil
	case "uniform":
		if len(parts) != 2 {
			return nil, fmt.Errorf("arrival: want uniform:<gap>")
		}
		gap, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("arrival: %w", err)
		}
		return workload.UniformArrivals{Every: gap}, nil
	case "burst":
		if len(parts) != 3 {
			return nil, fmt.Errorf("arrival: want burst:<n>:<gap>")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("arrival: %w", err)
		}
		gap, err := time.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("arrival: %w", err)
		}
		return workload.BurstArrivals{Size: n, Gap: gap}, nil
	}
	return nil, fmt.Errorf("arrival: unknown process %q", parts[0])
}

// emit prints a figure result in the chosen format.
func emit(table fmt.Stringer, csv func() string) {
	if *format == "csv" {
		fmt.Print(csv())
		return
	}
	fmt.Println(table)
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lsl-exp [flags] <rtts|fig2|fig3|fig4|fig5|trees|fig9|fig11|striping|multipath|fairness|loadgen|integrity|matrix[-twopath|-planetlab|-abilene]|cacheoffload|ablate|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "lsl-exp:", err)
		os.Exit(1)
	}
}

func run(name string) error {
	switch name {
	case "rtts":
		return rtts()
	case "fig2":
		c, err := experiments.Fig2(*seed, *iterations)
		if err != nil {
			return err
		}
		emit(c, c.CSV)
	case "fig3":
		c, err := experiments.Fig3(*seed, *iterations)
		if err != nil {
			return err
		}
		emit(c, c.CSV)
	case "fig4":
		r, err := experiments.Fig4(*seed, *iterations)
		if err != nil {
			return err
		}
		emit(r, r.CSV)
	case "fig5":
		r, err := experiments.Fig5(*seed, *iterations)
		if err != nil {
			return err
		}
		emit(r, r.CSV)
	case "trees":
		fmt.Println(experiments.TreeComparison(*epsilon))
	case "fig9", "fig10", "pct":
		cfg := experiments.DefaultAggregate()
		cfg.Seed = *seed
		cfg.Measurements = *measurements
		res, err := experiments.Aggregate(cfg)
		if err != nil {
			return err
		}
		emit(res, res.CSV)
	case "fig11":
		cfg := experiments.DefaultCore()
		cfg.Seed = *seed
		res, err := experiments.Core(cfg)
		if err != nil {
			return err
		}
		emit(res, res.CSV)
	case "matrix", "matrix-twopath", "matrix-planetlab", "matrix-abilene":
		topoName := "twopath"
		if idx := strings.IndexByte(name, '-'); idx >= 0 {
			topoName = name[idx+1:]
		}
		out, err := experiments.DumpMeasurements(topoName, *seed, 5)
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "weather", "weather-twopath", "weather-planetlab", "weather-abilene":
		topoName := "twopath"
		if idx := strings.IndexByte(name, '-'); idx >= 0 {
			topoName = name[idx+1:]
		}
		out, err := experiments.Weather(topoName, *seed)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "nws":
		out, err := experiments.NWSEvaluation(*seed)
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "striping":
		cfg := experiments.DefaultStriping()
		cfg.Seed = *seed
		cfg.Stripes = nil
		for n := 1; n <= *stripes; n *= 2 {
			cfg.Stripes = append(cfg.Stripes, n)
		}
		rows, err := experiments.Striping(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatStriping(rows))
		n, bw, err := experiments.SuggestedStripes(*stripes)
		if err != nil {
			return err
		}
		fmt.Printf("scheduler suggests %d stripes (forecast %.2f Mbit/s)\n\n", n, bw)
	case "multipath":
		cfg := experiments.DefaultMultipath()
		cfg.Seed = *seed
		cfg.Paths = nil
		for n := 1; n <= *paths; n++ {
			cfg.Paths = append(cfg.Paths, n)
		}
		rows, err := experiments.Multipath(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatMultipath(rows))
		n, bw, err := experiments.SuggestedPaths(*paths)
		if err != nil {
			return err
		}
		fmt.Printf("scheduler suggests %d disjoint routes (aggregate forecast %.2f Mbit/s)\n\n", n, bw)
	case "fairness":
		cfg := experiments.DefaultFairness()
		cfg.Seed = *seed
		if *sessions > 0 {
			cfg.Sessions = *sessions
		}
		r, err := experiments.Fairness(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFairness(r))
	case "loadgen":
		arr, err := parseArrival(*arrival)
		if err != nil {
			return err
		}
		out, err := experiments.Loadgen(experiments.LoadgenConfig{
			Seed:        *seed,
			Sessions:    *sessions,
			Arrival:     arr,
			Reliable:    *reliable,
			MaxSessions: *maxSessions,
			QueueDepth:  *queueDepth,
		})
		if err != nil {
			return err
		}
		fmt.Println(out)
	case "robustness":
		rows, err := experiments.Robustness(nil, *measurements/5)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatRobustness(rows))
	case "integrity":
		rows, err := experiments.Integrity(experiments.IntegrityConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatIntegrity(rows))
	case "cacheoffload":
		rows, err := experiments.CacheOffload(experiments.CacheOffloadConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCacheOffload(rows))
	case "ablate":
		return ablate()
	case "all":
		for _, n := range []string{"rtts", "trees", "fig2", "fig3", "fig4", "fig5", "fig9", "fig11", "striping", "multipath", "fairness", "robustness", "cacheoffload", "ablate"} {
			if err := run(n); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func rtts() error {
	rows, err := experiments.RTTs()
	if err != nil {
		return err
	}
	fmt.Println("Section 3 round-trip times:")
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	fmt.Println()
	return nil
}

func ablate() error {
	eps, err := experiments.EpsilonSweep(*seed, nil, 0)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatEpsilonSweep(eps))

	buf, err := experiments.BufferSweep(*seed, nil)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatBufferSweep(buf))

	loss, err := experiments.LossSweep(*seed, nil)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatLossSweep(loss))

	fresh, err := experiments.FreshnessSweep(*seed, 0)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFreshnessSweep(fresh))

	base, err := experiments.BaselineComparison(*seed, 0)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatBaselineComparison(base))

	aware, err := experiments.HostAwareComparison(*seed, 0)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatHostAwareComparison(aware))

	ps, err := experiments.PSocketsComparison(*seed, 0, nil)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatPSocketsComparison(ps))

	cont, err := experiments.ContentionSweep(*seed, nil)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatContentionSweep(cont))

	d, s1, s2, err := experiments.CwndTraces(*seed, 0)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatCwndTraces(d, s1, s2))
	return nil
}
