// Command benchgate compares two `go test -bench` output files — the
// PR base and head runs of the guarded benchmark set — and fails when
// head shows a statistically significant throughput regression beyond
// a threshold. It is the decision half of the CI perf gate; benchstat
// renders the human-readable comparison alongside it.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt \
//	          [-threshold 0.10] [-alpha 0.05] [-json head.json]
//
// Both files hold repeated runs of the same benchmarks (go test
// -count=N). For each benchmark present in both, benchgate takes the
// ns/op samples, tests base vs head with a two-sided Mann-Whitney U
// test (exact null distribution — no normality assumption, which
// -count=6 samples could not support), and declares a regression only
// when the median slowdown exceeds -threshold AND the difference is
// significant at -alpha. Benchmarks present on only one side (newly
// added or freshly deleted) are reported but never fail the gate.
//
// -json writes the head samples and per-benchmark verdicts as a
// machine-readable report, the BENCH_<sha>.json artifact CI uploads.
//
// Exit status: 0 when no benchmark regresses, 1 on regression, 2 on
// usage or parse errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

var (
	basePath  = flag.String("base", "", "bench output of the PR base (required)")
	headPath  = flag.String("head", "", "bench output of the PR head (required)")
	threshold = flag.Float64("threshold", 0.10, "maximum tolerated median slowdown (0.10 = 10%)")
	alpha     = flag.Float64("alpha", 0.05, "two-sided significance level for the Mann-Whitney test")
	jsonOut   = flag.String("json", "", "write the head samples and verdicts to this JSON file")
)

func main() {
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	results := compare(base, head, *threshold, *alpha)
	fmt.Print(render(results, *threshold, *alpha))
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, head, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	for _, r := range results {
		if r.Regression {
			os.Exit(1)
		}
	}
}

// parseFile reads one `go test -bench` output file into per-benchmark
// ns/op samples.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// parseBench extracts ns/op samples from `go test -bench` output,
// keyed by benchmark name with the -GOMAXPROCS suffix stripped so runs
// from differently sized machines still line up.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  <iters>  <value> ns/op  [more metrics...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op %q for %s", fields[i], name)
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

// Result is one benchmark's comparison verdict.
type Result struct {
	Name string `json:"name"`
	// BaseMedian and HeadMedian are ns/op.
	BaseMedian float64 `json:"base_median_ns,omitempty"`
	HeadMedian float64 `json:"head_median_ns,omitempty"`
	// Ratio is head/base median time: above 1 means head is slower.
	Ratio float64 `json:"ratio,omitempty"`
	// P is the two-sided Mann-Whitney p-value.
	P float64 `json:"p,omitempty"`
	// Status is "ok", "regression", "improvement", "base-only", or
	// "head-only".
	Status     string `json:"status"`
	Regression bool   `json:"regression"`
}

// compare produces one Result per benchmark seen on either side,
// sorted by name.
func compare(base, head map[string][]float64, threshold, alpha float64) []Result {
	names := map[string]bool{}
	for n := range base {
		names[n] = true
	}
	for n := range head {
		names[n] = true
	}
	var results []Result
	for n := range names {
		b, h := base[n], head[n]
		r := Result{Name: n}
		switch {
		case len(h) == 0:
			r.Status = "base-only"
		case len(b) == 0:
			// A benchmark the base doesn't have (newly added) cannot
			// regress; record its presence for the artifact.
			r.Status = "head-only"
			r.HeadMedian = median(h)
		default:
			r.BaseMedian = median(b)
			r.HeadMedian = median(h)
			r.Ratio = r.HeadMedian / r.BaseMedian
			r.P = mannWhitneyP(b, h)
			slower := r.Ratio > 1+threshold
			significant := r.P < alpha
			switch {
			case slower && significant:
				r.Status = "regression"
				r.Regression = true
			case r.Ratio < 1/(1+threshold) && significant:
				r.Status = "improvement"
			default:
				r.Status = "ok"
			}
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP returns the two-sided p-value of the Mann-Whitney U
// test for samples a and b, computed against the exact null
// distribution of U (every rank assignment equally likely). Ties get
// midranks in the statistic; the null distribution assumes continuous
// data, which makes the test slightly conservative when timing samples
// collide exactly.
func mannWhitneyP(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 1
	}
	// Midrank the pooled samples.
	type obs struct {
		v     float64
		fromA bool
	}
	pool := make([]obs, 0, n1+n2)
	for _, v := range a {
		pool = append(pool, obs{v, true})
	}
	for _, v := range b {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })
	ranks := make([]float64, len(pool))
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var r1 float64
	for i, o := range pool {
		if o.fromA {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u := u1
	if u2 < u {
		u = u2
	}
	// Exact null CDF by the standard counting recurrence.
	p := 2 * exactCDF(n1, n2, u)
	if p > 1 {
		p = 1
	}
	return p
}

// exactCDF returns P(U <= u) under the exact Mann-Whitney null
// distribution for sample sizes n1, n2.
func exactCDF(n1, n2 int, u float64) float64 {
	max := n1 * n2
	// counts[m][k] = number of rank assignments of m elements from the
	// first sample giving U statistic k, built by the recurrence
	// f(n1, n2, k) = f(n1-1, n2, k-n2) + f(n1, n2-1, k).
	f := make([][][]int64, n1+1)
	for i := range f {
		f[i] = make([][]int64, n2+1)
		for j := range f[i] {
			f[i][j] = make([]int64, max+1)
		}
	}
	for j := 0; j <= n2; j++ {
		f[0][j][0] = 1
	}
	for i := 0; i <= n1; i++ {
		f[i][0][0] = 1
	}
	for i := 1; i <= n1; i++ {
		for j := 1; j <= n2; j++ {
			for k := 0; k <= i*j; k++ {
				var c int64
				if k >= j {
					c += f[i-1][j][k-j]
				}
				c += f[i][j-1][k]
				f[i][j][k] = c
			}
		}
	}
	var total, below int64
	for k := 0; k <= max; k++ {
		total += f[n1][n2][k]
		// Midranked ties can make u half-integral; <= keeps the exact
		// integral case inclusive either way.
		if float64(k) <= u {
			below += f[n1][n2][k]
		}
	}
	return float64(below) / float64(total)
}

// render prints the benchstat-like verdict table.
func render(results []Result, threshold, alpha float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchgate: median slowdown > %.0f%% at p < %.2f fails\n", threshold*100, alpha)
	fmt.Fprintf(&b, "%-32s %14s %14s %8s %8s  %s\n", "benchmark", "base ns/op", "head ns/op", "ratio", "p", "status")
	for _, r := range results {
		switch r.Status {
		case "base-only":
			fmt.Fprintf(&b, "%-32s %14s %14s %8s %8s  %s\n", r.Name, "-", "-", "-", "-", r.Status)
		case "head-only":
			fmt.Fprintf(&b, "%-32s %14s %14.0f %8s %8s  %s\n", r.Name, "-", r.HeadMedian, "-", "-", r.Status)
		default:
			fmt.Fprintf(&b, "%-32s %14.0f %14.0f %8.3f %8.3f  %s\n",
				r.Name, r.BaseMedian, r.HeadMedian, r.Ratio, r.P, r.Status)
		}
	}
	return b.String()
}

// report is the -json artifact shape.
type report struct {
	Samples map[string][]float64 `json:"head_samples_ns"`
	Results []Result             `json:"results"`
}

func writeJSON(path string, head map[string][]float64, results []Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(report{Samples: head, Results: results})
}
