package main

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: github.com/netlogistics/lsl/internal/depot
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPump-4      	     939	   1246676 ns/op	6729.16 MB/s	 4268204 B/op	     271 allocs/op
BenchmarkPump-4      	     964	   1230579 ns/op	6817.19 MB/s	 4268101 B/op	     270 allocs/op
BenchmarkFairShare   	     500	   2384086 ns/op	3518.58 MB/s
PASS
ok  	github.com/netlogistics/lsl/internal/depot	2.310s
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkPump"]) != 2 || got["BenchmarkPump"][0] != 1246676 {
		t.Fatalf("BenchmarkPump samples = %v", got["BenchmarkPump"])
	}
	if len(got["BenchmarkFairShare"]) != 1 {
		t.Fatalf("BenchmarkFairShare samples = %v", got["BenchmarkFairShare"])
	}
}

// TestMannWhitneyExact checks the exact test against known anchors.
func TestMannWhitneyExact(t *testing.T) {
	// Complete separation at n=6,6: U=0, exact two-sided p = 2/C(12,6)
	// ≈ 0.00216.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{10, 11, 12, 13, 14, 15}
	if p := mannWhitneyP(a, b); math.Abs(p-2.0/924) > 1e-9 {
		t.Fatalf("separated samples p = %v, want %v", p, 2.0/924)
	}
	// Identical samples: maximally tied, p must not reject.
	c := []float64{5, 5, 5}
	if p := mannWhitneyP(c, c); p < 0.99 {
		t.Fatalf("identical samples p = %v, want ≈1", p)
	}
}

// bench renders n runs of one benchmark at the given ns/op values.
func bench(name string, ns ...float64) string {
	var sb strings.Builder
	for _, v := range ns {
		fmt.Fprintf(&sb, "%s-4\t100\t%.0f ns/op\n", name, v)
	}
	return sb.String()
}

func samples(t *testing.T, out string) map[string][]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGateFailsOnPumpSlowdown is the gate's acceptance case: a
// consistent 20% pump slowdown with realistic run-to-run jitter must
// be flagged as a regression.
func TestGateFailsOnPumpSlowdown(t *testing.T) {
	base := samples(t, bench("BenchmarkPump", 1000, 1010, 990, 1005, 995, 1002))
	head := samples(t, bench("BenchmarkPump", 1200, 1215, 1190, 1205, 1195, 1210))
	res := compare(base, head, 0.10, 0.05)
	if len(res) != 1 || !res[0].Regression {
		t.Fatalf("20%% slowdown not flagged: %+v", res)
	}
	if res[0].Status != "regression" {
		t.Fatalf("status = %q", res[0].Status)
	}
}

// TestGatePassesOnNoise: jitter within the threshold must pass even
// when medians differ a little.
func TestGatePassesOnNoise(t *testing.T) {
	base := samples(t, bench("BenchmarkPump", 1000, 1020, 980, 1010, 990, 1000))
	head := samples(t, bench("BenchmarkPump", 1030, 1010, 1050, 990, 1020, 1040))
	res := compare(base, head, 0.10, 0.05)
	if res[0].Regression {
		t.Fatalf("3%% drift flagged as regression: %+v", res[0])
	}
}

// TestGateIgnoresLargeButInsignificantSlowdown: one wild head sample
// should not fail the gate when the runs are statistically
// indistinguishable.
func TestGateIgnoresLargeButInsignificantSlowdown(t *testing.T) {
	base := samples(t, bench("BenchmarkPump", 1000, 1400))
	head := samples(t, bench("BenchmarkPump", 1500, 1100))
	res := compare(base, head, 0.10, 0.05)
	if res[0].Regression {
		t.Fatalf("two overlapping samples flagged: %+v", res[0])
	}
}

// TestGateToleratesNewAndRemovedBenchmarks: a benchmark only the head
// has (freshly added) or only the base has (deleted) is recorded but
// never fails the gate.
func TestGateToleratesNewAndRemovedBenchmarks(t *testing.T) {
	base := samples(t, bench("BenchmarkOld", 1000, 1000, 1000))
	head := samples(t, bench("BenchmarkNew", 999, 1001, 1000))
	res := compare(base, head, 0.10, 0.05)
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	for _, r := range res {
		if r.Regression {
			t.Fatalf("one-sided benchmark failed the gate: %+v", r)
		}
	}
	byName := map[string]string{}
	for _, r := range res {
		byName[r.Name] = r.Status
	}
	if byName["BenchmarkNew"] != "head-only" || byName["BenchmarkOld"] != "base-only" {
		t.Fatalf("statuses = %v", byName)
	}
}

// TestGateReportsImprovement: a significant speedup is labelled, not
// just silently passed.
func TestGateReportsImprovement(t *testing.T) {
	base := samples(t, bench("BenchmarkPump", 1200, 1215, 1190, 1205, 1195, 1210))
	head := samples(t, bench("BenchmarkPump", 1000, 1010, 990, 1005, 995, 1002))
	res := compare(base, head, 0.10, 0.05)
	if res[0].Status != "improvement" || res[0].Regression {
		t.Fatalf("speedup labelled %q", res[0].Status)
	}
}

func TestRender(t *testing.T) {
	base := samples(t, bench("BenchmarkPump", 1000, 1000, 1000))
	head := samples(t, bench("BenchmarkPump", 1001, 1001, 1001))
	out := render(compare(base, head, 0.10, 0.05), 0.10, 0.05)
	for _, want := range []string{"BenchmarkPump", "ratio", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
