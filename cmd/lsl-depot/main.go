// Command lsl-depot runs a logistical storage depot on real TCP
// sockets: it accepts LSL sessions, forwards them along their source
// routes or its route table, and delivers sessions addressed to itself.
//
// Usage:
//
//	lsl-depot -listen 0.0.0.0:7411 -self 198.51.100.7:7411 \
//	          [-routes routes.txt] [-pipeline 32] [-max-sessions 64] \
//	          [-queue-depth 16] [-queue-timeout 10s] \
//	          [-fair-share] [-trunk-rate 0] \
//	          [-spool-dir /var/lib/lsl/spool] [-spool-bytes 1073741824] \
//	          [-cache-bytes 268435456] [-cache-dir /var/lib/lsl/cache] \
//	          [-retries 3] [-retry-backoff 100ms] [-failover] \
//	          [-ctl] [-table-driven] [-max-hops 16] \
//	          [-debug-addr 127.0.0.1:7412]
//
// With -max-sessions alone, over-limit sessions are refused outright;
// adding -queue-depth holds up to that many arrivals in a bounded
// admission queue until a slot frees or -queue-timeout elapses
// (depot_admission_queued_total / depot_admission_timeouts_total count
// both outcomes, and admitted waits appear as "queued" trace events).
// -fair-share arbitrates concurrent forwarded sessions with a weighted
// deficit-round-robin scheduler keyed by each session's carried weight
// option; -trunk-rate additionally paces their aggregate to a fixed
// byte rate (0 keeps the scheduler work-conserving).
//
// With -spool-dir the depot's session store grows a durable disk tier:
// when stored payloads overflow the memory budget, the coldest ones
// spill to content-addressed files in that directory (named by their
// SHA-256, written atomically) instead of being evicted, and a
// restarted depot re-indexes the directory so async-stored sessions
// survive a crash — torn writes and files damaged at rest are detected
// by their digest and dropped, never served. -spool-bytes caps the disk
// tier; beyond it the coldest spooled payload is evicted for good.
// Sessions opened with the chunk-checksum option (lsl-xfer
// -verify-integrity) are verified and re-stamped as they pass through;
// a damaged chunk stops the forward, refuses the session upstream, and
// counts in depot_checksum_errors_total, so the corrupting hop
// identifies itself in /metrics and in "corrupt" trace events.
//
// With -cache-bytes the depot additionally runs a content-addressed
// chunk cache over that many memory bytes: sessions forwarded with a
// content digest populate it, cache probes and serve-from-cache
// directives are answered from it, and a session whose remaining range
// is held in full is short-circuited — the upstream sublink is
// terminated and the depot serves the bytes itself
// (depot_cache_{hits,misses,evictions,bytes}_total in /metrics,
// "cache-hit" trace events). -cache-dir adds a disk tier four times the
// memory budget: spans displaced from memory spill to CRC-framed files
// there and are re-indexed on restart.
//
// With -retries the depot re-dials a failed onward connection with
// exponential backoff before giving up on a session; -failover makes it
// try the session's final destination directly when the next hop stays
// unreachable. Both recoveries are counted in /metrics
// (depot_forward_retries_total, depot_failovers_total).
//
// The optional routes file has one entry per line:
//
//	<destination-ip:port> <next-hop-ip:port>
//
// With -ctl the depot accepts TypeControl sessions from an lsl-ctl
// controller and installs the route tables they push; -table-driven
// makes the pushed table the routing source of truth (sessions with no
// source route and no table entry are refused instead of dialed
// direct). -max-hops bounds forwarding chains: a session arriving with
// a hop index at or past the limit is refused, so a looping table
// cannot circulate traffic forever.
//
// With -debug-addr the depot serves a live telemetry endpoint:
// GET /metrics returns every counter, gauge, and histogram in a flat
// text format (append ?format=json for a JSON snapshot or ?format=prom
// for the Prometheus text exposition), and GET /sessions lists the
// in-flight sessions with their hop index, byte progress, and pipeline
// occupancy. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on the same listener. On SIGINT/SIGTERM the depot
// shuts down cleanly and logs a final stats line.
//
// Distributed tracing: -trace-out appends the depot's hop events as
// JSON lines to a file, and -trace-push ships them (batched, lossy
// under backpressure — trace_drops_total counts what was shed) to a
// trace collector's POST /traces/ingest endpoint, where events from
// every depot of a transfer are reassembled into one timeline by the
// wire-carried trace id.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netlogistics/lsl/internal/cache"
	"github.com/netlogistics/lsl/internal/depot"
	"github.com/netlogistics/lsl/internal/fairshare"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/retry"
	"github.com/netlogistics/lsl/internal/wire"
)

var (
	listenAddr   = flag.String("listen", "0.0.0.0:7411", "TCP listen address")
	selfAddr     = flag.String("self", "", "this depot's public ip:port (required)")
	routesPath   = flag.String("routes", "", "optional route table file")
	pipelineMB   = flag.Int("pipeline", 32, "per-session pipeline buffering in MB")
	maxSessions  = flag.Int("max-sessions", 0, "refuse sessions beyond this concurrency (0 = unlimited)")
	queueDepth   = flag.Int("queue-depth", 0, "queue up to this many over-limit sessions for admission instead of refusing them (0 = refuse immediately)")
	queueTimeout = flag.Duration("queue-timeout", depot.DefaultQueueTimeout, "refuse a queued session not admitted within this wait")
	fairShare    = flag.Bool("fair-share", false, "schedule concurrent forwarded sessions by their carried weights (weighted DRR over the downstream trunk)")
	trunkRate    = flag.Float64("trunk-rate", 0, "with -fair-share, pace aggregate forwarding to this many bytes/s (0 = work-conserving)")
	storeBytes   = flag.Int64("store-bytes", depot.DefaultStoreBytes, "memory budget for the async session store; overflow spills to -spool-dir (or evicts without one)")
	spoolDir     = flag.String("spool-dir", "", "durable disk tier for the session store: spill cold payloads here as content-addressed files and re-index them on restart (empty = memory only)")
	spoolBytes   = flag.Int64("spool-bytes", depot.DefaultSpoolBytes, "with -spool-dir, cap the disk tier at this many bytes (coldest spooled payload evicted beyond it)")
	cacheBytes   = flag.Int64("cache-bytes", 0, "run a content-addressed chunk cache over this many memory bytes; forwarded digest-carrying sessions populate it and repeats are served from it (0 = no cache)")
	cacheDir     = flag.String("cache-dir", "", "with -cache-bytes, spill cold cache spans to CRC-framed files in this directory (4x the memory budget) and re-index them on restart (empty = memory only)")
	dialTimeout  = flag.Duration("dial-timeout", 10*time.Second, "onward connection timeout")
	retries      = flag.Int("retries", 0, "retry a failed onward dial this many times with backoff (0 = dial once)")
	backoff      = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before the first onward-dial retry (doubles each retry)")
	failover     = flag.Bool("failover", false, "dial a session's final destination directly when its next hop stays unreachable after retries")
	acceptCtl    = flag.Bool("ctl", false, "accept control sessions that push route tables")
	tableDriven  = flag.Bool("table-driven", false, "route unrouted sessions only by the pushed table (miss = refuse)")
	maxHops      = flag.Int("max-hops", 16, "refuse sessions whose hop index reaches this limit (0 = unlimited)")
	debugAddr    = flag.String("debug-addr", "", "serve /metrics and /sessions on this ip:port (empty = off)")
	pprofOn      = flag.Bool("pprof", false, "mount /debug/pprof on the debug listener (needs -debug-addr)")
	traceOut     = flag.String("trace-out", "", "append hop trace events as JSON lines to this file (empty = off)")
	tracePush    = flag.String("trace-push", "", "POST batched trace events to this collector ingest URL, e.g. http://ctl:7502/traces/ingest (empty = off)")
	verbose      = flag.Bool("v", false, "log per-session diagnostics")
)

func main() {
	flag.Parse()
	if *selfAddr == "" {
		fmt.Fprintln(os.Stderr, "lsl-depot: -self is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		log.Fatalf("lsl-depot: %v", err)
	}
}

func run() error {
	self, err := wire.ParseEndpoint(*selfAddr)
	if err != nil {
		return err
	}
	var routes func(wire.Endpoint) (wire.Endpoint, bool)
	if *routesPath != "" {
		table, err := loadRoutes(*routesPath)
		if err != nil {
			return err
		}
		log.Printf("loaded %d routes from %s", len(table), *routesPath)
		routes = func(dst wire.Endpoint) (wire.Endpoint, bool) {
			next, ok := table[dst]
			return next, ok
		}
	}

	reg := obs.NewRegistry()
	sessions := obs.NewSessionTable()
	lsl.SetMetrics(reg)

	// Trace sinks: a local JSONL file, a remote collector, or both.
	var sinks obs.MultiSink
	if *traceOut != "" {
		tf, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer tf.Close()
		sinks = append(sinks, obs.NewJSONSink(tf).CountDrops(reg.Counter(obs.MetricTraceDrops)))
	}
	if *tracePush != "" {
		push := obs.NewPushSink(obs.PushConfig{URL: *tracePush}).
			CountDrops(reg.Counter(obs.MetricTraceDrops))
		defer push.Close()
		sinks = append(sinks, push)
		log.Printf("pushing trace events to %s", *tracePush)
	}
	var trace obs.Sink
	if len(sinks) > 0 {
		trace = sinks
	}

	cfg := depot.Config{
		Self: self,
		Dial: lsl.DialerFunc(func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, *dialTimeout)
		}),
		Routes:         routes,
		PipelineBytes:  *pipelineMB << 20,
		MaxSessions:    *maxSessions,
		QueueDepth:     *queueDepth,
		QueueTimeout:   *queueTimeout,
		StoreBytes:     *storeBytes,
		SpoolDir:       *spoolDir,
		SpoolBytes:     *spoolBytes,
		FailoverDirect: *failover,
		AcceptControl:  *acceptCtl,
		TableDriven:    *tableDriven,
		MaxHops:        *maxHops,
		Metrics:        reg,
		Sessions:       sessions,
		Trace:          trace,
	}
	if *retries > 0 {
		cfg.ForwardRetry = retry.Policy{MaxAttempts: *retries + 1, BaseDelay: *backoff}
	}
	if *cacheBytes > 0 {
		cc, err := cache.New(cache.Config{MemoryBytes: *cacheBytes, Dir: *cacheDir, Metrics: reg})
		if err != nil {
			return fmt.Errorf("cache: %w", err)
		}
		cfg.Cache = cc
		st := cc.Stats()
		if *cacheDir != "" {
			log.Printf("cache: %d memory bytes + disk tier %s (re-indexed %d spans, dropped %d damaged)",
				*cacheBytes, *cacheDir, st.Recovered, st.Dropped)
		} else {
			log.Printf("cache: %d memory bytes", *cacheBytes)
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cache-dir needs -cache-bytes to size the cache")
	}
	if *fairShare {
		cfg.FairShare = fairshare.New(fairshare.Config{Rate: *trunkRate})
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv, err := depot.New(cfg)
	if err != nil {
		return err
	}

	if *spoolDir != "" {
		diskBytes, _, recovered, _ := srv.SpoolUsage()
		log.Printf("spool %s: recovered %d durable sessions (%d bytes), budget %d bytes",
			*spoolDir, recovered, diskBytes, *spoolBytes)
	}

	ln, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		return err
	}
	log.Printf("depot %s listening on %s (pipeline %d MB)", self, *listenAddr, *pipelineMB)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("debug endpoint on http://%s (/metrics, /sessions)", dln.Addr())
		h := obs.NewHandler(obs.HandlerConfig{Registry: reg, Sessions: sessions, Pprof: *pprofOn})
		go func() {
			if herr := http.Serve(dln, h); herr != nil {
				log.Printf("debug endpoint: %v", herr)
			}
		}()
	}

	// A clean shutdown logs the final tallies so short runs still leave
	// a record of what moved.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %s, shutting down", sig)
		log.Printf("final %s", statsLine(srv.Stats()))
		srv.Close()
		ln.Close()
	}()

	// Periodic stats line, so operators can watch forwarding volume.
	go func() {
		for range time.Tick(30 * time.Second) {
			log.Print(statsLine(srv.Stats()))
		}
	}()
	err = srv.Serve(ln)
	if err != nil && strings.Contains(err.Error(), "use of closed network connection") {
		return nil
	}
	return err
}

// statsLine renders one depot stats snapshot as a log line.
func statsLine(st depot.Stats) string {
	return fmt.Sprintf("stats: accepted=%d forwarded=%d delivered=%d generated=%d refused=%d errors=%d checksum_errors=%d bytes=%d",
		st.Accepted, st.Forwarded, st.Delivered, st.Generated, st.Refused, st.Errors,
		st.ChecksumErrors, st.BytesForwarded+st.BytesDelivered)
}

func loadRoutes(path string) (map[wire.Endpoint]wire.Endpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	table := make(map[wire.Endpoint]wire.Endpoint)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'dst next', got %q", path, lineNo, line)
		}
		dst, err := wire.ParseEndpoint(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		next, err := wire.ParseEndpoint(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		table[dst] = next
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return table, nil
}
