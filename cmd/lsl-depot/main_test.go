package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/netlogistics/lsl/internal/wire"
)

func writeRoutes(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "routes.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoutes(t *testing.T) {
	path := writeRoutes(t, `
# destination           next hop
10.0.0.5:7411 10.0.0.2:7411
10.0.0.6:7411 10.0.0.2:7411
10.0.0.7:7411 10.0.0.3:7411
`)
	table, err := loadRoutes(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 3 {
		t.Fatalf("entries = %d", len(table))
	}
	dst := wire.MustEndpoint("10.0.0.5:7411")
	if got := table[dst]; got != wire.MustEndpoint("10.0.0.2:7411") {
		t.Fatalf("route = %v", got)
	}
}

func TestLoadRoutesErrors(t *testing.T) {
	cases := []string{
		"10.0.0.5:7411\n",                 // missing next hop
		"notanip 10.0.0.2:7411\n",         // bad destination
		"10.0.0.5:7411 not-an-endpoint\n", // bad next hop
	}
	for _, c := range cases {
		if _, err := loadRoutes(writeRoutes(t, c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	if _, err := loadRoutes("/does/not/exist"); err == nil {
		t.Error("missing file accepted")
	}
}
