// Command lsl-ctl runs the control plane for a mesh of lsl-depot
// processes: it probes every link between the rostered hosts with
// generate sessions, feeds the measurements into NWS forecasters, and
// pushes epoch-stamped route tables to each depot whenever the ε-damped
// minimax plan actually changes.
//
// Usage:
//
//	lsl-ctl -roster roster.txt -self 198.51.100.1:7500 \
//	        [-interval 5m] [-epsilon 0.10] [-probe-bytes 256K] \
//	        [-push-timeout 10s] [-refresh-every 12] [-once] \
//	        [-debug-addr 127.0.0.1:7502]
//
// The roster file has one mesh member per line:
//
//	<name> <ip:port> [depot|nopush]
//
// A plain entry is an endpoint host: it is probed, it receives table
// pushes (its own depot forwards the first hop of locally originated
// sessions), but the planner never relays third-party traffic through
// it. "depot" marks a host the planner may use as a relay. "nopush"
// marks a host that is probed only — useful while its depot is still
// being deployed without -ctl.
//
// Depots in the mesh must run with -ctl (to accept pushes) and usually
// -table-driven (to make the pushed table authoritative). Senders use
// lsl-xfer -table-driven. Depots keep their last table if lsl-ctl dies
// — stale routing beats no routing — and -refresh-every bounds how
// stale a restarted depot can stay.
//
// With -once the controller runs a single probe→replan→push round and
// exits (cron-style operation); otherwise it loops at -interval until
// SIGINT/SIGTERM. With -debug-addr it serves GET /metrics with the
// controller's counters and the current table epoch; adding -collect
// turns the same listener into the mesh's trace collector: depots
// started with -trace-push POST their hop events to
// http://<debug-addr>/traces/ingest, and GET /traces (or
// /traces/{trace-id}) returns the assembled per-transfer timelines
// that lsl-trace renders.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netlogistics/lsl/internal/ctl"
	"github.com/netlogistics/lsl/internal/lsl"
	"github.com/netlogistics/lsl/internal/obs"
	"github.com/netlogistics/lsl/internal/schedule"
	"github.com/netlogistics/lsl/internal/topo"
	"github.com/netlogistics/lsl/internal/wire"
)

var (
	rosterPath   = flag.String("roster", "", "mesh roster file: '<name> <ip:port> [depot|nopush]' per line (required)")
	selfAddr     = flag.String("self", "", "controller's own ip:port, stamped on control sessions (required)")
	interval     = flag.Duration("interval", ctl.DefaultInterval, "probe-and-replan cadence")
	epsilon      = flag.Float64("epsilon", -1, "route-damping ε: alternatives within this fraction are equivalent (negative = default 0.10, 0 = off)")
	probeSpec    = flag.String("probe-bytes", "256K", "bytes per link probe (suffixes K, M, G)")
	pushTimeout  = flag.Duration("push-timeout", ctl.DefaultPushTimeout, "bound on one table push (dial, write, ack)")
	dialTimeout  = flag.Duration("dial-timeout", 10*time.Second, "TCP connect timeout for probes and pushes")
	refreshEvery = flag.Int("refresh-every", ctl.DefaultRefreshEvery, "re-push unchanged tables every this many rounds (negative = never)")
	once         = flag.Bool("once", false, "run a single round and exit")
	debugAddr    = flag.String("debug-addr", "", "serve /metrics on this ip:port (empty = off)")
	collect      = flag.Bool("collect", false, "also run the mesh trace collector on -debug-addr (/traces, /traces/ingest)")
	pprofOn      = flag.Bool("pprof", false, "mount /debug/pprof on the debug listener (needs -debug-addr)")
	verbose      = flag.Bool("v", false, "log per-round diagnostics")
)

func main() {
	flag.Parse()
	if *rosterPath == "" || *selfAddr == "" {
		fmt.Fprintln(os.Stderr, "lsl-ctl: -roster and -self are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		log.Fatalf("lsl-ctl: %v", err)
	}
}

// rosterEntry is one parsed roster line.
type rosterEntry struct {
	name  string
	addr  wire.Endpoint
	depot bool
	push  bool
}

func run() error {
	self, err := wire.ParseEndpoint(*selfAddr)
	if err != nil {
		return err
	}
	probeBytes, err := parseSize(*probeSpec)
	if err != nil {
		return err
	}
	roster, err := loadRoster(*rosterPath)
	if err != nil {
		return err
	}

	// Each roster host is its own performance-topology site: the daemon
	// knows nothing about co-location, so no pair may be skipped as
	// intra-site. Links stay unset — the first round's probes, not a
	// model, seed the forecasters.
	hosts := make([]topo.Host, len(roster))
	for i, r := range roster {
		hosts[i] = topo.Host{Name: r.name, Site: r.name, Depot: r.depot}
	}
	tp, err := topo.New("lsl-ctl", hosts)
	if err != nil {
		return err
	}
	planner, err := schedule.NewPlanner(tp, *epsilon)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	cfg := ctl.Config{
		Planner: planner,
		Self:    self,
		Dial: lsl.DialerFunc(func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, *dialTimeout)
		}),
		Interval:     *interval,
		ProbeBytes:   uint64(probeBytes),
		PushTimeout:  *pushTimeout,
		RefreshEvery: *refreshEvery,
		Metrics:      reg,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	c, err := ctl.New(cfg)
	if err != nil {
		return err
	}
	nDepots := 0
	for _, r := range roster {
		if err := c.Register(r.name, r.addr, r.push); err != nil {
			return err
		}
		if r.depot {
			nDepots++
		}
	}
	log.Printf("controller %s over %d hosts (%d relay depots), interval %v, ε %.3g",
		self, len(roster), nDepots, *interval, planner.Epsilon)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		hcfg := obs.HandlerConfig{Registry: reg, Pprof: *pprofOn}
		if *collect {
			col := obs.NewCollector(0).CountDrops(reg.Counter(obs.MetricTraceDrops))
			defer col.Close()
			hcfg.Collector = col
			log.Printf("trace collector on http://%s/traces (ingest at /traces/ingest)", dln.Addr())
		}
		log.Printf("debug endpoint on http://%s (/metrics)", dln.Addr())
		h := obs.NewHandler(hcfg)
		go func() {
			if herr := http.Serve(dln, h); herr != nil {
				log.Printf("debug endpoint: %v", herr)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("received %s, shutting down at epoch %d", sig, c.Epoch())
		cancel()
	}()

	if *once {
		rep, err := c.Round(ctx)
		if err != nil {
			return err
		}
		log.Print(roundLine(rep))
		return nil
	}
	err = c.Run(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// roundLine renders one round report as a log line.
func roundLine(rep ctl.RoundReport) string {
	return fmt.Sprintf("round: probes=%d probe-errors=%d epoch=%d changed=%d pushed=%d push-errors=%d",
		rep.Probes, rep.ProbeErrors, rep.Epoch, len(rep.Changed), rep.Pushed, rep.PushErrors)
}

// loadRoster parses the mesh roster file.
func loadRoster(path string) ([]rosterEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var roster []rosterEntry
	seen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("%s:%d: want '<name> <ip:port> [depot|nopush]', got %q", path, lineNo, line)
		}
		e := rosterEntry{name: fields[0], push: true}
		if seen[e.name] {
			return nil, fmt.Errorf("%s:%d: duplicate host %q", path, lineNo, e.name)
		}
		seen[e.name] = true
		e.addr, err = wire.ParseEndpoint(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		if len(fields) == 3 {
			switch fields[2] {
			case "depot":
				e.depot = true
			case "nopush":
				e.push = false
			default:
				return nil, fmt.Errorf("%s:%d: unknown role %q (want depot or nopush)", path, lineNo, fields[2])
			}
		}
		roster = append(roster, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(roster) < 2 {
		return nil, fmt.Errorf("%s: roster has %d hosts, need >= 2", path, len(roster))
	}
	return roster, nil
}

// parseSize parses a byte count with K/M/G suffixes.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
