package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeRoster(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "roster.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoster(t *testing.T) {
	path := writeRoster(t, `
# the mesh
src 198.51.100.2:7411
relay 198.51.100.3:7411 depot
probe-only 198.51.100.4:7411 nopush
`)
	roster, err := loadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(roster) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(roster))
	}
	if roster[0].name != "src" || roster[0].depot || !roster[0].push {
		t.Fatalf("entry 0 = %+v", roster[0])
	}
	if !roster[1].depot || !roster[1].push {
		t.Fatalf("entry 1 = %+v", roster[1])
	}
	if roster[2].depot || roster[2].push {
		t.Fatalf("entry 2 = %+v", roster[2])
	}
	if roster[1].addr.String() != "198.51.100.3:7411" {
		t.Fatalf("entry 1 addr = %s", roster[1].addr)
	}
}

func TestLoadRosterRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad role":       "a 198.51.100.2:7411 relay\nb 198.51.100.3:7411",
		"bad address":    "a nowhere\nb 198.51.100.3:7411",
		"duplicate host": "a 198.51.100.2:7411\na 198.51.100.3:7411",
		"too few hosts":  "a 198.51.100.2:7411",
		"extra fields":   "a 198.51.100.2:7411 depot extra\nb 198.51.100.3:7411",
	}
	for name, content := range cases {
		if _, err := loadRoster(writeRoster(t, content)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseSize(t *testing.T) {
	for spec, want := range map[string]int64{"256K": 256 << 10, "1M": 1 << 20, "2G": 2 << 30, "512": 512} {
		got, err := parseSize(spec)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", spec, got, err, want)
		}
	}
	for _, spec := range []string{"", "-1", "0", "xK"} {
		if _, err := parseSize(spec); err == nil {
			t.Errorf("parseSize(%q) succeeded", spec)
		}
	}
}
