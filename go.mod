module github.com/netlogistics/lsl

go 1.22
